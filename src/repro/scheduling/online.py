"""Online SIC-aware scheduling with stochastic packet arrivals.

The paper's scheduler is offline: it assumes a known backlog.  Real
APs see packets *arrive*; Section 3 motivates exactly this setting
("each transmitter has a finite number of packets ... it needs to get
a fair share of the channel to transmit its packets without inordinate
amount of delay").  This module closes that loop with a queueing
simulation:

* packets arrive per client as Poisson processes;
* a service policy picks what to send whenever the channel frees:

  - ``fifo`` — plain 802.11 behaviour: serve head-of-line packets one
    at a time in arrival order;
  - ``sic_pairing`` — run the blossom matching over the clients that
    currently have a head-of-line packet and serve the resulting slots
    (one packet per client per batch, re-planned when the batch ends);

* metrics: mean/percentile packet delay, served counts, utilisation.

The interesting question is *delay*, not just airtime: SIC pairing
drains the queue faster, so under load it wins on sojourn time too —
quantified by the online test suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.util.rng import SeedLike, as_seed_sequence, make_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ArrivalClient:
    """A client with a Poisson packet-arrival process."""

    name: str
    rss_w: float
    arrival_rate_hz: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("client name must be non-empty")
        check_positive("rss_w", self.rss_w)
        check_positive("arrival_rate_hz", self.arrival_rate_hz)

    def as_upload_client(self) -> UploadClient:
        return UploadClient(self.name, self.rss_w)


@dataclass
class OnlineMetrics:
    """Delay and throughput statistics of one online run."""

    delays_s: List[float] = field(default_factory=list)
    served_packets: int = 0
    busy_time_s: float = 0.0
    horizon_s: float = 0.0
    leftover_packets: int = 0

    @property
    def mean_delay_s(self) -> float:
        if not self.delays_s:
            return 0.0
        return float(np.mean(self.delays_s))

    @property
    def p95_delay_s(self) -> float:
        if not self.delays_s:
            return 0.0
        return float(np.quantile(self.delays_s, 0.95))

    @property
    def utilisation(self) -> float:
        if self.horizon_s <= 0.0:
            return 0.0
        return min(1.0, self.busy_time_s / self.horizon_s)


def _arrival_times(clients: Sequence[ArrivalClient], horizon_s: float,
                   rng: np.random.Generator) -> List[Tuple[float, str]]:
    """Merged, time-sorted (arrival_time, client) events."""
    events: List[Tuple[float, str]] = []
    for client in clients:
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / client.arrival_rate_hz))
            if t > horizon_s:
                break
            events.append((t, client.name))
    events.sort()
    return events


def simulate_online(scheduler: SicScheduler,
                    clients: Sequence[ArrivalClient],
                    horizon_s: float,
                    policy: str = "sic_pairing",
                    seed: SeedLike = None) -> OnlineMetrics:
    """Run one online scheduling experiment over ``horizon_s`` seconds.

    Arrivals after the horizon are cut off; the run continues until the
    already-queued packets drain (so every generated packet gets a
    delay sample).  ``policy`` is ``"fifo"`` or ``"sic_pairing"``.
    """
    if policy not in ("fifo", "sic_pairing"):
        raise ValueError(f"unknown policy {policy!r}")
    check_positive("horizon_s", horizon_s)
    names = [c.name for c in clients]
    if len(set(names)) != len(names):
        raise ValueError(f"client names must be unique, got {names}")

    rng = make_rng(seed)
    arrivals = _arrival_times(clients, horizon_s, rng)
    by_name = {c.name: c for c in clients}

    metrics = OnlineMetrics(horizon_s=horizon_s)
    # Per-client FIFO queues of arrival timestamps.
    queues: Dict[str, List[float]] = {c.name: [] for c in clients}
    pending = arrivals[::-1]  # pop from the end = earliest first

    now = 0.0

    def admit_until(t: float) -> None:
        while pending and pending[-1][0] <= t:
            arrival_time, name = pending.pop()
            queues[name].append(arrival_time)

    def queued_total() -> int:
        return sum(len(q) for q in queues.values())

    while pending or queued_total() > 0:
        admit_until(now)
        if queued_total() == 0:
            # Idle until the next arrival.
            now = pending[-1][0]
            continue

        if policy == "fifo":
            # Serve the globally earliest head-of-line packet, alone.
            name = min((n for n, q in queues.items() if q),
                       key=lambda n: queues[n][0])
            arrival_time = queues[name].pop(0)
            client = by_name[name]
            service = scheduler.solo_cost(client.as_upload_client())
            now += service
            metrics.busy_time_s += service
            metrics.delays_s.append(now - arrival_time)
            metrics.served_packets += 1
            continue

        # sic_pairing: schedule one head-of-line packet per backlogged
        # client as an optimal batch, then serve its slots in order.
        batch = [by_name[name].as_upload_client()
                 for name, q in queues.items() if q]
        schedule = scheduler.schedule(batch)
        for slot in schedule.slots:
            now += slot.duration_s
            metrics.busy_time_s += slot.duration_s
            for name in slot.clients:
                arrival_time = queues[name].pop(0)
                metrics.delays_s.append(now - arrival_time)
                metrics.served_packets += 1
            # New arrivals may join the next batch, not this one.
        admit_until(now)

    metrics.leftover_packets = queued_total()
    return metrics


def compare_policies_online(scheduler: SicScheduler,
                            clients: Sequence[ArrivalClient],
                            horizon_s: float,
                            seed: SeedLike = None
                            ) -> Dict[str, OnlineMetrics]:
    """Run both policies on the *same* arrival sample paths.

    ``seed`` is resolved once into a ``SeedSequence``; each policy then
    gets a fresh generator from that same sequence, so both replay an
    identical arrival stream and a repeated call with the same seed
    reproduces the whole comparison.
    """
    seed_seq = as_seed_sequence(seed)
    out: Dict[str, OnlineMetrics] = {}
    for policy in ("fifo", "sic_pairing"):
        out[policy] = simulate_online(scheduler, clients, horizon_s,
                                      policy=policy, seed=make_rng(seed_seq))
    return out
