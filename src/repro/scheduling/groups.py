"""Group scheduling: upload slots with more than two clients.

The paper's scheduler pairs clients because its receiver cancels one
signal.  With the k-SIC extension (:mod:`repro.sic.ksic`) a slot can
carry k concurrent packets.  Optimal partitioning into groups of size
<= k is no longer a matching problem (it is set partition, NP-hard for
k >= 3), so this module provides:

* :func:`group_airtime` — the cost of one group (never worse than
  serialising it);
* :func:`greedy_group_schedule` — seed each group with the strongest
  remaining client and greedily add members while they reduce the
  *average per-packet* time;
* :func:`exhaustive_group_schedule` — exact optimum by enumeration,
  small n only (the test oracle).

The k = 2 greedy case is comparable to (but not guaranteed equal to)
the blossom matching; the ablation bench quantifies what k = 3, 4 buy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.phy.shannon import Channel
from repro.scheduling.scheduler import UploadClient
from repro.sic.ksic import z_ksic_uplink, z_serial_uplink
from repro.util.validation import check_positive


@dataclass(frozen=True)
class GroupSlot:
    """One slot: a set of clients transmitting concurrently."""

    clients: Tuple[str, ...]
    duration_s: float
    used_sic: bool


@dataclass(frozen=True)
class GroupSchedule:
    """A complete grouped upload schedule."""

    slots: Tuple[GroupSlot, ...]
    serial_time_s: float

    @property
    def total_time_s(self) -> float:
        return sum(slot.duration_s for slot in self.slots)

    @property
    def gain(self) -> float:
        total = self.total_time_s
        if total <= 0.0:
            return 1.0
        return self.serial_time_s / total

    def __str__(self) -> str:
        lines = [f"group schedule: {self.total_time_s:.6g}s "
                 f"(serial {self.serial_time_s:.6g}s, gain {self.gain:.3f})"]
        for slot in self.slots:
            tag = "k-sic" if slot.used_sic else "solo"
            lines.append(f"  [{' | '.join(slot.clients)}] "
                         f"{slot.duration_s:.6g}s ({tag})")
        return "\n".join(lines)


def group_airtime(channel: Channel, packet_bits: float,
                  rss_list: Sequence[float],
                  cancellation_efficiency: float = 1.0
                  ) -> Tuple[float, bool]:
    """Minimum time for a group: concurrent k-SIC vs serialising it.

    Returns ``(time, used_sic)``.
    """
    check_positive("packet_bits", packet_bits)
    if not rss_list:
        return 0.0, False
    serial = z_serial_uplink(channel, packet_bits, rss_list)
    if len(rss_list) == 1:
        return serial, False
    concurrent = z_ksic_uplink(channel, packet_bits, rss_list,
                               cancellation_efficiency)
    if concurrent < serial:
        return concurrent, True
    return serial, False


def greedy_group_schedule(channel: Channel,
                          clients: Sequence[UploadClient],
                          packet_bits: float = 12_000.0,
                          max_group_size: int = 3,
                          cancellation_efficiency: float = 1.0
                          ) -> GroupSchedule:
    """Greedy grouping: grow each group while the per-packet time drops.

    Groups are seeded with the strongest remaining client (its
    interference-limited rate is the hardest to serve, so it gets first
    pick of partners); each growth step adds the single client whose
    admission shrinks the *total schedule time* the most — i.e.
    ``group_time(group + c) - solo_time(c) < group_time(group)`` — and
    stops when no admission helps or the size cap is hit.
    """
    if max_group_size < 1:
        raise ValueError("max_group_size must be >= 1")
    names = [c.name for c in clients]
    if len(set(names)) != len(names):
        raise ValueError(f"client names must be unique, got {names}")

    remaining = sorted(clients, key=lambda c: -c.rss_w)
    slots: List[GroupSlot] = []
    while remaining:
        # A list (not a deque) because admission below pops arbitrary
        # indices; the head pop runs once per *group*, not per element.
        group = [remaining.pop(0)]  # repro-lint: disable=RPR304
        time, used_sic = group_airtime(
            channel, packet_bits, [c.rss_w for c in group],
            cancellation_efficiency)
        while len(group) < max_group_size and remaining:
            best: Optional[Tuple[float, float, bool, int]] = None
            for idx, candidate in enumerate(remaining):
                rss = [c.rss_w for c in group] + [candidate.rss_w]
                cand_time, cand_sic = group_airtime(
                    channel, packet_bits, rss, cancellation_efficiency)
                solo, _ = group_airtime(channel, packet_bits,
                                        [candidate.rss_w],
                                        cancellation_efficiency)
                marginal = cand_time - solo
                if best is None or marginal < best[0]:
                    best = (marginal, cand_time, cand_sic, idx)
            assert best is not None
            marginal, cand_time, cand_sic, idx = best
            if marginal >= time - 1e-15:
                break  # admitting anyone would not shrink the total
            group.append(remaining.pop(idx))
            time = cand_time
            used_sic = cand_sic
        slots.append(GroupSlot(
            clients=tuple(c.name for c in group),
            duration_s=time,
            used_sic=used_sic,
        ))
    serial = z_serial_uplink(channel, packet_bits,
                             [c.rss_w for c in clients])
    return GroupSchedule(slots=tuple(slots), serial_time_s=serial)


def _partitions(items: List[int], max_size: int):
    """Yield all partitions of ``items`` into parts of size <= max_size."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    # Enumerate the part containing `first`.
    from itertools import combinations
    for extra in range(0, max_size):
        for partners in combinations(rest, extra):
            part = [first, *partners]
            leftover = [x for x in rest if x not in partners]
            for sub in _partitions(leftover, max_size):
                yield [part] + sub


def exhaustive_group_schedule(channel: Channel,
                              clients: Sequence[UploadClient],
                              packet_bits: float = 12_000.0,
                              max_group_size: int = 3,
                              cancellation_efficiency: float = 1.0,
                              max_clients: int = 9) -> GroupSchedule:
    """Exact optimal grouping by enumeration (test oracle, small n)."""
    if len(clients) > max_clients:
        raise ValueError(
            f"exhaustive grouping limited to {max_clients} clients, "
            f"got {len(clients)}")
    best_slots: Optional[List[GroupSlot]] = None
    best_time = float("inf")
    for partition in _partitions(list(range(len(clients))), max_group_size):
        slots = []
        total = 0.0
        for part in partition:
            rss = [clients[i].rss_w for i in part]
            time, used_sic = group_airtime(channel, packet_bits, rss,
                                           cancellation_efficiency)
            slots.append(GroupSlot(
                clients=tuple(clients[i].name for i in part),
                duration_s=time, used_sic=used_sic))
            total += time
        if total < best_time:
            best_time = total
            best_slots = slots
    assert best_slots is not None
    serial = z_serial_uplink(channel, packet_bits,
                             [c.rss_w for c in clients])
    return GroupSchedule(slots=tuple(best_slots), serial_time_s=serial)
