"""Scheduling baselines: serial, greedy, random, brute force.

These are the comparators the evaluation uses to show what the blossom
matching buys:

* :func:`serial_schedule` — the plain 802.11 behaviour: every client
  transmits alone (the paper's ``Z_{-SIC}`` baseline);
* :func:`greedy_schedule` — repeatedly pair the two clients whose joint
  transmission saves the most time (a natural heuristic an AP vendor
  might ship);
* :func:`random_schedule` — pair clients uniformly at random (isolates
  how much of the gain comes from pairing *choice* vs pairing at all);
* :func:`brute_force_schedule` — exact optimum by exhaustive pairing
  enumeration; exponential, used as the oracle in tests (n <= 12).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.scheduling.scheduler import Schedule, SicScheduler, UploadClient
from repro.util.rng import SeedLike, make_rng


def serial_schedule(scheduler: SicScheduler,
                    clients: Sequence[UploadClient]) -> Schedule:
    """Every client transmits alone at its clean rate."""
    return scheduler.pairing_to_schedule(clients, pairs=(),
                                         solo=list(range(len(clients))))


def greedy_schedule(scheduler: SicScheduler,
                    clients: Sequence[UploadClient]) -> Schedule:
    """Repeatedly take the pair with the largest saving over serial.

    Stops pairing when no remaining pair saves time; leftovers go solo.
    """
    remaining = list(range(len(clients)))
    pairs: List[Tuple[int, int]] = []
    while len(remaining) >= 2:
        best: Optional[Tuple[float, int, int]] = None
        for a_pos in range(len(remaining)):
            for b_pos in range(a_pos + 1, len(remaining)):
                i, j = remaining[a_pos], remaining[b_pos]
                cost = scheduler.pair_cost(clients[i], clients[j]).airtime_s
                serial = (scheduler.solo_cost(clients[i])
                          + scheduler.solo_cost(clients[j]))
                saving = serial - cost
                if best is None or saving > best[0]:
                    best = (saving, i, j)
        assert best is not None
        saving, i, j = best
        if saving <= 0.0:
            break
        pairs.append((i, j))
        remaining.remove(i)
        remaining.remove(j)
    return scheduler.pairing_to_schedule(clients, pairs, solo=remaining)


def random_schedule(scheduler: SicScheduler,
                    clients: Sequence[UploadClient],
                    rng: SeedLike = None) -> Schedule:
    """Pair clients uniformly at random; odd one out goes solo."""
    generator = make_rng(rng)
    order = list(range(len(clients)))
    generator.shuffle(order)
    pairs = [(order[k], order[k + 1]) for k in range(0, len(order) - 1, 2)]
    solo = [order[-1]] if len(order) % 2 == 1 else []
    return scheduler.pairing_to_schedule(clients, pairs, solo)


def _pairings(indices: List[int]):
    """Yield every way to split ``indices`` into pairs and singles.

    Each element pairs with a later element or stays single; intended
    for the brute-force oracle only (super-exponential growth).
    """
    if not indices:
        yield [], []
        return
    first, rest = indices[0], indices[1:]
    # first stays solo
    for pairs, solo in _pairings(rest):
        yield pairs, [first] + solo
    # first pairs with someone
    for k in range(len(rest)):
        partner = rest[k]
        remaining = rest[:k] + rest[k + 1:]
        for pairs, solo in _pairings(remaining):
            yield [(first, partner)] + pairs, solo


def brute_force_schedule(scheduler: SicScheduler,
                         clients: Sequence[UploadClient],
                         max_clients: int = 12) -> Schedule:
    """Exact optimum by exhaustive enumeration (test oracle).

    Searches every partition into pairs and singles, so it also proves
    that restricting the matching to a *perfect* one (with the dummy
    node) loses nothing.
    """
    if len(clients) > max_clients:
        raise ValueError(
            f"brute force limited to {max_clients} clients, got {len(clients)}"
        )
    best: Optional[Schedule] = None
    for pairs, solo in _pairings(list(range(len(clients)))):
        candidate = scheduler.pairing_to_schedule(clients, pairs, solo)
        if best is None or candidate.total_time_s < best.total_time_s:
            best = candidate
    assert best is not None
    return best
