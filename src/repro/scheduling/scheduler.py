"""The SIC-aware upload scheduler (paper Section 6, Fig. 12).

Problem statement (verbatim from the paper): *given a set of backlogged
clients and their respective maximum bitrates to the AP, find all pairs
of clients and their associated transmit powers, such that the total
time to upload all the backlogged traffic is minimum.*

The reduction: build a graph with one vertex per backlogged client and
an edge for every client pair weighted by the pair's minimum joint
completion time ``t_ij`` (serial vs SIC vs SIC + enabled techniques —
see :func:`repro.techniques.pairing.pair_airtime`).  For an odd client
count, add a dummy vertex whose edge to client ``i`` costs ``i``'s solo
transmission time.  A minimum-weight perfect matching of this graph is
exactly the optimal pairing; slots can then run in any order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.phy.shannon import Channel
from repro.scheduling.matching import min_weight_perfect_matching
from repro.scheduling.matching_scalar import min_weight_perfect_matching_scalar
from repro.techniques.pairing import (
    PairAirtime,
    PairMode,
    TechniqueSet,
    pair_airtime,
    pair_airtime_batch,
    solo_airtime,
    solo_airtime_batch,
)
from repro.util.timing import PhaseTimer, maybe_phase
from repro.util.validation import check_positive


@dataclass(frozen=True)
class UploadClient:
    """A backlogged client: its name and its RSS at the AP (max power)."""

    name: str
    rss_w: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("client name must be non-empty")
        check_positive("rss_w", self.rss_w)


@dataclass(frozen=True)
class ScheduledSlot:
    """One schedule slot: a pair transmitting jointly, or a solo client."""

    clients: Tuple[str, ...]
    duration_s: float
    mode: PairMode

    @property
    def is_pair(self) -> bool:
        return len(self.clients) == 2


@dataclass(frozen=True)
class Schedule:
    """A complete upload schedule with its serial baseline."""

    slots: Tuple[ScheduledSlot, ...]
    serial_time_s: float

    @property
    def total_time_s(self) -> float:
        return sum(slot.duration_s for slot in self.slots)

    @property
    def gain(self) -> float:
        """Serial completion time over scheduled completion time."""
        total = self.total_time_s
        if total <= 0.0:
            return 1.0
        return self.serial_time_s / total

    @property
    def client_names(self) -> Tuple[str, ...]:
        return tuple(name for slot in self.slots for name in slot.clients)

    def __str__(self) -> str:
        lines = [f"schedule: {self.total_time_s:.6g}s "
                 f"(serial {self.serial_time_s:.6g}s, gain {self.gain:.3f})"]
        for slot in self.slots:
            lines.append(f"  [{' | '.join(slot.clients)}] "
                         f"{slot.duration_s:.6g}s ({slot.mode.value})")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (e.g. to hand to an AP controller)."""
        return {
            "serial_time_s": self.serial_time_s,
            "total_time_s": self.total_time_s,
            "gain": self.gain,
            "slots": [
                {
                    "clients": list(slot.clients),
                    "duration_s": slot.duration_s,
                    "mode": slot.mode.value,
                }
                for slot in self.slots
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Schedule":
        """Inverse of :meth:`to_dict` (derived fields are recomputed)."""
        try:
            slots = tuple(
                ScheduledSlot(
                    clients=tuple(entry["clients"]),
                    duration_s=float(entry["duration_s"]),
                    mode=PairMode(entry["mode"]),
                )
                for entry in data["slots"]
            )
            return cls(slots=slots,
                       serial_time_s=float(data["serial_time_s"]))
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed schedule payload: {exc}") from exc


@dataclass(frozen=True)
class SicScheduler:
    """Builds optimal SIC-aware upload schedules via blossom matching.

    ``techniques`` selects which Section-5 enhancements the MAC may use
    when costing a joint transmission; ``sic_enabled=False`` yields the
    no-SIC scheduler whose schedules are always fully serial (useful as
    the baseline in evaluations).
    """

    channel: Channel = field(default_factory=Channel)
    packet_bits: float = 12000.0
    techniques: TechniqueSet = TechniqueSet.NONE
    sic_enabled: bool = True

    def __post_init__(self) -> None:
        check_positive("packet_bits", self.packet_bits)

    # ------------------------------------------------------------------

    def pair_cost(self, a: UploadClient, b: UploadClient) -> PairAirtime:
        """The ``t_ij`` edge weight for one client pair."""
        return pair_airtime(self.channel, self.packet_bits,
                            a.rss_w, b.rss_w,
                            techniques=self.techniques,
                            sic_enabled=self.sic_enabled)

    def solo_cost(self, client: UploadClient) -> float:
        """The dummy-edge weight: the client's solo transmit time."""
        return solo_airtime(self.channel, self.packet_bits, client.rss_w)

    def serial_time(self, clients: Sequence[UploadClient]) -> float:
        """The no-SIC baseline: every client transmits alone, in turn."""
        return sum(self.solo_cost(c) for c in clients)

    # ------------------------------------------------------------------

    def build_cost_graph(
            self, clients: Sequence[UploadClient],
    ) -> Tuple[Dict[Tuple[int, int], float], Optional[int]]:
        """The matching instance: pair costs plus an optional dummy node.

        Returns ``(costs, dummy_index)`` where ``dummy_index`` is the
        dummy vertex id for odd client counts, else ``None``.

        The full upper-triangular ``t_ij`` matrix is computed in one
        vectorised shot via :func:`pair_airtime_batch`; element for
        element it is bit-identical to the historical per-pair loop,
        which survives as :meth:`build_cost_graph_scalar` for the golden
        equivalence tests and the speedup benchmark.
        """
        n = len(clients)
        costs: Dict[Tuple[int, int], float] = {}
        if n >= 2:
            rss = np.fromiter((c.rss_w for c in clients), dtype=float,
                              count=n)
            ii, jj = np.triu_indices(n, k=1)
            airtimes = pair_airtime_batch(
                self.channel, self.packet_bits, rss[ii], rss[jj],
                techniques=self.techniques, sic_enabled=self.sic_enabled)
            costs = dict(zip(zip(ii.tolist(), jj.tolist()),
                             airtimes.tolist()))
        dummy = None
        if n % 2 == 1:
            dummy = n
            solos = solo_airtime_batch(
                self.channel, self.packet_bits,
                np.fromiter((c.rss_w for c in clients), dtype=float,
                            count=n))
            for i, t in enumerate(solos.tolist()):
                costs[(i, dummy)] = t
        return costs, dummy

    def build_cost_graph_scalar(
            self, clients: Sequence[UploadClient],
    ) -> Tuple[Dict[Tuple[int, int], float], Optional[int]]:
        """Pre-vectorisation :meth:`build_cost_graph`, kept as the golden
        reference (PR-1 convention): one scalar ``pair_airtime`` call per
        pair.  Must stay behaviourally frozen."""
        n = len(clients)
        costs: Dict[Tuple[int, int], float] = {}
        for i in range(n):
            for j in range(i + 1, n):
                costs[(i, j)] = self.pair_cost(clients[i], clients[j]).airtime_s
        dummy = None
        if n % 2 == 1:
            dummy = n
            for i in range(n):
                costs[(i, dummy)] = self.solo_cost(clients[i])
        return costs, dummy

    def schedule(self, clients: Sequence[UploadClient],
                 timer: Optional[PhaseTimer] = None) -> Schedule:
        """Compute the minimum-total-time schedule for the backlog.

        Pass a :class:`~repro.util.timing.PhaseTimer` to attribute the
        wall-clock time to the ``cost_build`` / ``matching`` /
        ``assembly`` phases (accumulating across calls).
        """
        if not clients:
            return Schedule(slots=(), serial_time_s=0.0)
        names = [c.name for c in clients]
        if len(set(names)) != len(names):
            raise ValueError(f"client names must be unique, got {names}")
        if len(clients) == 1:
            only = clients[0]
            solo = self.solo_cost(only)
            return Schedule(
                slots=(ScheduledSlot((only.name,), solo, PairMode.SERIAL),),
                serial_time_s=solo,
            )

        with maybe_phase(timer, "cost_build"):
            costs, dummy = self.build_cost_graph(clients)
        n_vertices = len(clients) + (1 if dummy is not None else 0)
        with maybe_phase(timer, "matching"):
            matching = min_weight_perfect_matching(costs, n_vertices)
        with maybe_phase(timer, "assembly"):
            return self._matching_to_schedule(clients, matching, dummy)

    def schedule_scalar(self, clients: Sequence[UploadClient]) -> Schedule:
        """The pre-fast-path scheduling pipeline, end to end: scalar cost
        graph + pure-Python blossom.  Exists so the golden tests and the
        speedup benchmark can compare against the historical behaviour
        without checking out an old commit."""
        if not clients:
            return Schedule(slots=(), serial_time_s=0.0)
        names = [c.name for c in clients]
        if len(set(names)) != len(names):
            raise ValueError(f"client names must be unique, got {names}")
        if len(clients) == 1:
            only = clients[0]
            solo = self.solo_cost(only)
            return Schedule(
                slots=(ScheduledSlot((only.name,), solo, PairMode.SERIAL),),
                serial_time_s=solo,
            )

        costs, dummy = self.build_cost_graph_scalar(clients)
        n_vertices = len(clients) + (1 if dummy is not None else 0)
        matching = min_weight_perfect_matching_scalar(costs, n_vertices)
        return self._matching_to_schedule(clients, matching, dummy)

    def pairing_to_schedule(self, clients: Sequence[UploadClient],
                            pairs: Sequence[Tuple[int, int]],
                            solo: Sequence[int] = ()) -> Schedule:
        """Cost out an explicit pairing (used by baselines and tests)."""
        slots: List[ScheduledSlot] = []
        seen: List[int] = []
        for (i, j) in pairs:
            cost = self.pair_cost(clients[i], clients[j])
            slots.append(ScheduledSlot((clients[i].name, clients[j].name),
                                       cost.airtime_s, cost.mode))
            seen.extend((i, j))
        for i in solo:
            slots.append(ScheduledSlot((clients[i].name,),
                                       self.solo_cost(clients[i]),
                                       PairMode.SERIAL))
            seen.append(i)
        if sorted(seen) != list(range(len(clients))):
            raise ValueError("pairing must cover every client exactly once")
        return Schedule(slots=tuple(slots),
                        serial_time_s=self.serial_time(clients))

    def _matching_to_schedule(self, clients: Sequence[UploadClient],
                              matching, dummy: Optional[int]) -> Schedule:
        pairs: List[Tuple[int, int]] = []
        solo: List[int] = []
        for (i, j) in matching:
            if dummy is not None and j == dummy:
                solo.append(i)
            elif dummy is not None and i == dummy:
                solo.append(j)
            else:
                pairs.append((i, j))
        return self.pairing_to_schedule(clients, pairs, solo)
