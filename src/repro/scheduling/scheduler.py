"""The SIC-aware upload scheduler (paper Section 6, Fig. 12).

Problem statement (verbatim from the paper): *given a set of backlogged
clients and their respective maximum bitrates to the AP, find all pairs
of clients and their associated transmit powers, such that the total
time to upload all the backlogged traffic is minimum.*

The reduction: build a graph with one vertex per backlogged client and
an edge for every client pair weighted by the pair's minimum joint
completion time ``t_ij`` (serial vs SIC vs SIC + enabled techniques —
see :func:`repro.techniques.pairing.pair_airtime`).  For an odd client
count, add a dummy vertex whose edge to client ``i`` costs ``i``'s solo
transmission time.  A minimum-weight perfect matching of this graph is
exactly the optimal pairing; slots can then run in any order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.phy.shannon import Channel
from repro.scheduling.matching import min_weight_perfect_matching
from repro.scheduling.matching_scalar import min_weight_perfect_matching_scalar
from repro.techniques.pairing import (
    PairAirtime,
    PairMode,
    TechniqueSet,
    pair_airtime,
    pair_airtime_batch,
    solo_airtime,
    solo_airtime_batch,
)
from repro.util.timing import PhaseTimer, maybe_phase
from repro.util.validation import check_positive


@dataclass(frozen=True)
class UploadClient:
    """A backlogged client: its name and its RSS at the AP (max power)."""

    name: str
    rss_w: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("client name must be non-empty")
        check_positive("rss_w", self.rss_w)


@dataclass(frozen=True)
class ScheduledSlot:
    """One schedule slot: a pair transmitting jointly, or a solo client."""

    clients: Tuple[str, ...]
    duration_s: float
    mode: PairMode

    @property
    def is_pair(self) -> bool:
        return len(self.clients) == 2


@dataclass(frozen=True)
class Schedule:
    """A complete upload schedule with its serial baseline."""

    slots: Tuple[ScheduledSlot, ...]
    serial_time_s: float

    @property
    def total_time_s(self) -> float:
        return sum(slot.duration_s for slot in self.slots)

    @property
    def gain(self) -> float:
        """Serial completion time over scheduled completion time."""
        total = self.total_time_s
        if total <= 0.0:
            return 1.0
        return self.serial_time_s / total

    @property
    def client_names(self) -> Tuple[str, ...]:
        return tuple(name for slot in self.slots for name in slot.clients)

    def __str__(self) -> str:
        lines = [f"schedule: {self.total_time_s:.6g}s "
                 f"(serial {self.serial_time_s:.6g}s, gain {self.gain:.3f})"]
        for slot in self.slots:
            lines.append(f"  [{' | '.join(slot.clients)}] "
                         f"{slot.duration_s:.6g}s ({slot.mode.value})")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (e.g. to hand to an AP controller)."""
        return {
            "serial_time_s": self.serial_time_s,
            "total_time_s": self.total_time_s,
            "gain": self.gain,
            "slots": [
                {
                    "clients": list(slot.clients),
                    "duration_s": slot.duration_s,
                    "mode": slot.mode.value,
                }
                for slot in self.slots
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Schedule":
        """Inverse of :meth:`to_dict` (derived fields are recomputed)."""
        try:
            slots = tuple(
                ScheduledSlot(
                    clients=tuple(entry["clients"]),
                    duration_s=float(entry["duration_s"]),
                    mode=PairMode(entry["mode"]),
                )
                for entry in data["slots"]
            )
            return cls(slots=slots,
                       serial_time_s=float(data["serial_time_s"]))
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed schedule payload: {exc}") from exc


@dataclass(frozen=True, eq=False)
class BacklogCosts:
    """Technique-independent per-backlog arrays, computed once.

    Solo airtimes and the serial baseline depend only on
    ``(channel, packet_bits, rss)`` — never on the technique set or on
    ``sic_enabled`` — so one precompute serves every scheduler sharing
    those (Fig. 13 evaluates three technique sets per snapshot against
    the same backlog).  Built by :meth:`SicScheduler.precompute_costs`;
    ``eq=False`` because ndarray fields break dataclass equality.
    """

    #: Client names, in backlog order.
    names: Tuple[str, ...]
    #: RSS at the AP (watts), in backlog order.
    rss_w: np.ndarray
    #: Solo transmit times (s), bit-identical to per-client ``solo_cost``.
    solo_airtime_s: np.ndarray
    #: Left-to-right sum of the solo airtimes (the no-SIC baseline).
    serial_time_s: float


@dataclass(frozen=True)
class SicScheduler:
    """Builds optimal SIC-aware upload schedules via blossom matching.

    ``techniques`` selects which Section-5 enhancements the MAC may use
    when costing a joint transmission; ``sic_enabled=False`` yields the
    no-SIC scheduler whose schedules are always fully serial (useful as
    the baseline in evaluations).
    """

    channel: Channel = field(default_factory=Channel)
    packet_bits: float = 12000.0
    techniques: TechniqueSet = TechniqueSet.NONE
    sic_enabled: bool = True

    def __post_init__(self) -> None:
        check_positive("packet_bits", self.packet_bits)

    # ------------------------------------------------------------------

    def pair_cost(self, a: UploadClient, b: UploadClient) -> PairAirtime:
        """The ``t_ij`` edge weight for one client pair."""
        return pair_airtime(self.channel, self.packet_bits,
                            a.rss_w, b.rss_w,
                            techniques=self.techniques,
                            sic_enabled=self.sic_enabled)

    def solo_cost(self, client: UploadClient) -> float:
        """The dummy-edge weight: the client's solo transmit time."""
        return solo_airtime(self.channel, self.packet_bits, client.rss_w)

    def serial_time(self, clients: Sequence[UploadClient]) -> float:
        """The no-SIC baseline: every client transmits alone, in turn."""
        return sum(self.solo_cost(c) for c in clients)

    def precompute_costs(self,
                         clients: Sequence[UploadClient]) -> BacklogCosts:
        """Batch the technique-independent per-backlog arrays.

        The result is valid for *any* scheduler with the same
        ``channel`` and ``packet_bits``, whatever its ``techniques`` /
        ``sic_enabled``; pass it to :meth:`schedule` as ``precomputed=``
        to skip recomputing solo airtimes and the serial baseline.
        Bit-identity with the scalar path holds because
        ``solo_airtime_batch`` is pinned element-identical to
        ``solo_airtime`` and the serial sum is the same left-to-right
        float accumulation.
        """
        n = len(clients)
        rss = np.fromiter((c.rss_w for c in clients), dtype=float, count=n)
        solos = solo_airtime_batch(self.channel, self.packet_bits, rss)
        return BacklogCosts(
            names=tuple(c.name for c in clients),
            rss_w=rss,
            solo_airtime_s=solos,
            serial_time_s=float(sum(solos.tolist())),
        )

    def _check_precomputed(self, clients: Sequence[UploadClient],
                           precomputed: Optional[BacklogCosts],
                           ) -> Optional[BacklogCosts]:
        if precomputed is not None and \
                precomputed.names != tuple(c.name for c in clients):
            raise ValueError("precomputed costs do not match the backlog")
        return precomputed

    # ------------------------------------------------------------------

    def build_cost_graph(
            self, clients: Sequence[UploadClient],
            precomputed: Optional[BacklogCosts] = None,
    ) -> Tuple[Dict[Tuple[int, int], float], Optional[int]]:
        """The matching instance: pair costs plus an optional dummy node.

        Returns ``(costs, dummy_index)`` where ``dummy_index`` is the
        dummy vertex id for odd client counts, else ``None``.

        The full upper-triangular ``t_ij`` matrix is computed in one
        vectorised shot via :func:`pair_airtime_batch`; element for
        element it is bit-identical to the historical per-pair loop,
        which survives as :meth:`build_cost_graph_scalar` for the golden
        equivalence tests and the speedup benchmark.
        """
        n = len(clients)
        pre = self._check_precomputed(clients, precomputed)
        costs: Dict[Tuple[int, int], float] = {}
        if n >= 2:
            rss = pre.rss_w if pre is not None else np.fromiter(
                (c.rss_w for c in clients), dtype=float, count=n)
            ii, jj = np.triu_indices(n, k=1)
            airtimes = pair_airtime_batch(
                self.channel, self.packet_bits, rss[ii], rss[jj],
                techniques=self.techniques, sic_enabled=self.sic_enabled)
            costs = dict(zip(zip(ii.tolist(), jj.tolist()),
                             airtimes.tolist()))
        dummy = None
        if n % 2 == 1:
            dummy = n
            solos = pre.solo_airtime_s if pre is not None else \
                solo_airtime_batch(
                    self.channel, self.packet_bits,
                    np.fromiter((c.rss_w for c in clients), dtype=float,
                                count=n))
            for i, t in enumerate(solos.tolist()):
                costs[(i, dummy)] = t
        return costs, dummy

    def build_cost_graph_scalar(
            self, clients: Sequence[UploadClient],
    ) -> Tuple[Dict[Tuple[int, int], float], Optional[int]]:
        """Pre-vectorisation :meth:`build_cost_graph`, kept as the golden
        reference (PR-1 convention): one scalar ``pair_airtime`` call per
        pair.  Must stay behaviourally frozen."""
        n = len(clients)
        costs: Dict[Tuple[int, int], float] = {}
        for i in range(n):
            for j in range(i + 1, n):
                costs[(i, j)] = self.pair_cost(clients[i], clients[j]).airtime_s
        dummy = None
        if n % 2 == 1:
            dummy = n
            for i in range(n):
                costs[(i, dummy)] = self.solo_cost(clients[i])
        return costs, dummy

    def schedule(self, clients: Sequence[UploadClient],
                 timer: Optional[PhaseTimer] = None,
                 precomputed: Optional[BacklogCosts] = None) -> Schedule:
        """Compute the minimum-total-time schedule for the backlog.

        Pass a :class:`~repro.util.timing.PhaseTimer` to attribute the
        wall-clock time to the ``cost_build`` / ``matching`` /
        ``assembly`` phases (accumulating across calls).  ``precomputed``
        (from :meth:`precompute_costs`, possibly on another scheduler
        with the same channel and packet size) reuses the shared solo
        airtimes and serial baseline; the schedule is bit-identical with
        or without it.
        """
        if not clients:
            return Schedule(slots=(), serial_time_s=0.0)
        names = [c.name for c in clients]
        if len(set(names)) != len(names):
            raise ValueError(f"client names must be unique, got {names}")
        pre = self._check_precomputed(clients, precomputed)
        if len(clients) == 1:
            only = clients[0]
            solo = float(pre.solo_airtime_s[0]) if pre is not None \
                else self.solo_cost(only)
            return Schedule(
                slots=(ScheduledSlot((only.name,), solo, PairMode.SERIAL),),
                serial_time_s=solo,
            )

        with maybe_phase(timer, "cost_build"):
            costs, dummy = self.build_cost_graph(clients, pre)
        n_vertices = len(clients) + (1 if dummy is not None else 0)
        with maybe_phase(timer, "matching"):
            matching = min_weight_perfect_matching(costs, n_vertices)
        with maybe_phase(timer, "assembly"):
            return self._matching_to_schedule(clients, matching, dummy, pre)

    def schedule_gain(self, clients: Sequence[UploadClient],
                      precomputed: Optional[BacklogCosts] = None,
                      cost_graph: Optional[Tuple[Dict[Tuple[int, int], float],
                                                 Optional[int]]] = None,
                      ) -> float:
        """The optimal schedule's gain, skipping slot assembly.

        Bit-identical to ``self.schedule(clients, ...).gain``: the
        chosen pairs' durations are read back from the cost graph
        (``pair_airtime_batch`` is pinned element-identical to the
        scalar ``pair_cost``) and the total accumulates in the same
        slot order (pairs in sorted matching order, then solos), so the
        division ``serial / total`` sees the same floats.  Trace
        evaluations (Fig. 13) call this per snapshot — they only plot
        gain CDFs, so building :class:`ScheduledSlot` tuples and
        re-costing the matched pairs for their modes is pure overhead.

        ``cost_graph`` optionally supplies the ``(costs, dummy)``
        matching instance (e.g. sliced out of a batched cost
        computation); it must equal ``build_cost_graph(clients,
        precomputed)``.
        """
        if not clients:
            return 1.0  # Schedule((), 0.0).gain
        names = [c.name for c in clients]
        if len(set(names)) != len(names):
            raise ValueError(f"client names must be unique, got {names}")
        pre = self._check_precomputed(clients, precomputed)
        if len(clients) == 1:
            return 1.0  # solo / solo
        costs, dummy = cost_graph if cost_graph is not None \
            else self.build_cost_graph(clients, pre)
        n_vertices = len(clients) + (1 if dummy is not None else 0)
        matching = min_weight_perfect_matching(costs, n_vertices)
        pair_keys: List[Tuple[int, int]] = []
        solo: List[int] = []
        # Sorted, not set order: the float total must accumulate in the
        # same canonical order as _matching_to_schedule's slots (RPR405).
        for (i, j) in sorted(matching):
            if dummy is not None and j == dummy:
                solo.append(i)
            elif dummy is not None and i == dummy:
                solo.append(j)
            else:
                pair_keys.append((i, j))
        total = 0.0
        for key in pair_keys:
            total += costs[key]
        if solo:
            solos = pre.solo_airtime_s.tolist() if pre is not None else None
            for i in solo:
                total += solos[i] if solos is not None \
                    else self.solo_cost(clients[i])
        if total <= 0.0:
            return 1.0
        serial = pre.serial_time_s if pre is not None \
            else self.serial_time(clients)
        return serial / total

    def schedule_scalar(self, clients: Sequence[UploadClient]) -> Schedule:
        """The pre-fast-path scheduling pipeline, end to end: scalar cost
        graph + pure-Python blossom.  Exists so the golden tests and the
        speedup benchmark can compare against the historical behaviour
        without checking out an old commit."""
        if not clients:
            return Schedule(slots=(), serial_time_s=0.0)
        names = [c.name for c in clients]
        if len(set(names)) != len(names):
            raise ValueError(f"client names must be unique, got {names}")
        if len(clients) == 1:
            only = clients[0]
            solo = self.solo_cost(only)
            return Schedule(
                slots=(ScheduledSlot((only.name,), solo, PairMode.SERIAL),),
                serial_time_s=solo,
            )

        costs, dummy = self.build_cost_graph_scalar(clients)
        n_vertices = len(clients) + (1 if dummy is not None else 0)
        matching = min_weight_perfect_matching_scalar(costs, n_vertices)
        return self._matching_to_schedule(clients, matching, dummy)

    def pairing_to_schedule(self, clients: Sequence[UploadClient],
                            pairs: Sequence[Tuple[int, int]],
                            solo: Sequence[int] = (),
                            precomputed: Optional[BacklogCosts] = None,
                            ) -> Schedule:
        """Cost out an explicit pairing (used by baselines and tests)."""
        pre = self._check_precomputed(clients, precomputed)
        slots: List[ScheduledSlot] = []
        seen: List[int] = []
        for (i, j) in pairs:
            cost = self.pair_cost(clients[i], clients[j])
            slots.append(ScheduledSlot((clients[i].name, clients[j].name),
                                       cost.airtime_s, cost.mode))
            seen.extend((i, j))
        for i in solo:
            duration = float(pre.solo_airtime_s[i]) if pre is not None \
                else self.solo_cost(clients[i])
            slots.append(ScheduledSlot((clients[i].name,), duration,
                                       PairMode.SERIAL))
            seen.append(i)
        if sorted(seen) != list(range(len(clients))):
            raise ValueError("pairing must cover every client exactly once")
        serial = pre.serial_time_s if pre is not None \
            else self.serial_time(clients)
        return Schedule(slots=tuple(slots), serial_time_s=serial)

    def _matching_to_schedule(self, clients: Sequence[UploadClient],
                              matching: Set[Tuple[int, int]],
                              dummy: Optional[int],
                              precomputed: Optional[BacklogCosts] = None,
                              ) -> Schedule:
        pairs: List[Tuple[int, int]] = []
        solo: List[int] = []
        # Sorted, not set order: slot order (and thus the float total)
        # must be a stated contract, not a hash-table accident (RPR405).
        for (i, j) in sorted(matching):
            if dummy is not None and j == dummy:
                solo.append(i)
            elif dummy is not None and i == dummy:
                solo.append(j)
            else:
                pairs.append((i, j))
        return self.pairing_to_schedule(clients, pairs, solo, precomputed)
