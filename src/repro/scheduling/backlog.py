"""Round-based scheduling of multi-packet backlogs.

The core scheduler (Section 6) assumes one pending packet per client.
Real upload backlogs are uneven — "it is likely that at an instant of
time, each transmitter has a finite number of packets to be sent ...
and it needs to get a fair share of the channel" (Section 3).  This
module extends the scheduler to such backlogs the natural way: run the
blossom matching round by round over the clients that still have
packets queued, re-pairing as queues drain.

Because pairings are recomputed each round, a client that loses its
ideal partner mid-backlog gets matched with the next-best one instead
of idling — and the per-round optimality of the matching keeps every
round's airtime minimal for the clients still standing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.scheduling.scheduler import Schedule, SicScheduler, UploadClient
from repro.util.validation import check_positive


@dataclass(frozen=True)
class BacklogClient:
    """A client with a queue of equal-length packets."""

    name: str
    rss_w: float
    backlog: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("client name must be non-empty")
        check_positive("rss_w", self.rss_w)
        if self.backlog < 0:
            raise ValueError(f"backlog must be >= 0, got {self.backlog}")

    def as_upload_client(self) -> UploadClient:
        return UploadClient(self.name, self.rss_w)


@dataclass(frozen=True)
class BacklogResult:
    """Outcome of draining a multi-packet backlog."""

    rounds: Tuple[Schedule, ...]
    serial_time_s: float
    #: Time each client delivered its last packet (completion per client).
    finish_times_s: Dict[str, float] = field(default_factory=dict)

    @property
    def total_time_s(self) -> float:
        return sum(schedule.total_time_s for schedule in self.rounds)

    @property
    def gain(self) -> float:
        total = self.total_time_s
        if total <= 0.0:
            return 1.0
        return self.serial_time_s / total

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def fairness_index(self) -> float:
        """Jain's fairness index over per-client finish times.

        1.0 means everyone finished together; 1/n means one client
        hogged the channel until the end while others finished first.
        Computed over finish times normalised by backlog share, so a
        client with a larger queue is *expected* to finish later.
        """
        if not self.finish_times_s:
            return 1.0
        values = list(self.finish_times_s.values())
        numerator = sum(values) ** 2
        denominator = len(values) * sum(v * v for v in values)
        if denominator <= 0.0:
            return 1.0
        return numerator / denominator


def drain_backlog(scheduler: SicScheduler,
                  clients: Sequence[BacklogClient]) -> BacklogResult:
    """Drain every client's queue with per-round blossom scheduling.

    Each round schedules one packet for every client that still has
    one; rounds repeat until all queues are empty.  Returns the round
    schedules plus per-client finish times for fairness analysis.
    """
    names = [c.name for c in clients]
    if len(set(names)) != len(names):
        raise ValueError(f"client names must be unique, got {names}")

    remaining = {c.name: c.backlog for c in clients}
    by_name = {c.name: c for c in clients}
    rounds: List[Schedule] = []
    finish: Dict[str, float] = {}
    elapsed = 0.0
    while True:
        active = [by_name[name].as_upload_client()
                  for name, queued in remaining.items() if queued > 0]
        if not active:
            break
        schedule = scheduler.schedule(active)
        rounds.append(schedule)
        # Packets complete slot by slot inside the round.
        slot_start = elapsed
        for slot in schedule.slots:
            slot_end = slot_start + slot.duration_s
            for name in slot.clients:
                remaining[name] -= 1
                if remaining[name] == 0:
                    finish[name] = slot_end
            slot_start = slot_end
        elapsed += schedule.total_time_s

    serial = sum(
        scheduler.solo_cost(c.as_upload_client()) * c.backlog
        for c in clients if c.backlog > 0)
    return BacklogResult(rounds=tuple(rounds), serial_time_s=serial,
                         finish_times_s=finish)
