"""Trace record types.

These mirror what the paper's measurement pipeline produced:
association snapshots (which clients were attached to which AP, with
what RSSI) for the upload study, and per-location link measurements for
the downlink study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.util.units import dbm_to_watts, watts_to_dbm


@dataclass(frozen=True)
class ClientObservation:
    """One client as seen by its AP in one snapshot."""

    client: str
    rssi_dbm: float

    @property
    def rss_w(self) -> float:
        """Received power in watts (what the analysis layer consumes)."""
        return float(dbm_to_watts(self.rssi_dbm))

    @classmethod
    def from_watts(cls, client: str, rss_w: float) -> "ClientObservation":
        return cls(client=client, rssi_dbm=float(watts_to_dbm(rss_w)))


@dataclass(frozen=True)
class ApSnapshot:
    """One AP's association set at one point in time."""

    ap: str
    timestamp_s: float
    clients: Tuple[ClientObservation, ...]

    @property
    def n_clients(self) -> int:
        return len(self.clients)

    def rss_watts(self) -> List[float]:
        return [c.rss_w for c in self.clients]


@dataclass(frozen=True)
class UploadTrace:
    """A full upload trace: snapshots across APs and time."""

    building: str
    snapshot_interval_s: float
    snapshots: Tuple[ApSnapshot, ...]

    def __iter__(self) -> Iterator[ApSnapshot]:
        return iter(self.snapshots)

    def __len__(self) -> int:
        return len(self.snapshots)

    @property
    def duration_s(self) -> float:
        if not self.snapshots:
            return 0.0
        return max(s.timestamp_s for s in self.snapshots)

    @property
    def ap_names(self) -> List[str]:
        return sorted({s.ap for s in self.snapshots})

    def busy_snapshots(self, min_clients: int = 2) -> List[ApSnapshot]:
        """Snapshots with enough backlogged clients to pair."""
        return [s for s in self.snapshots if s.n_clients >= min_clients]


@dataclass(frozen=True)
class DownlinkMeasurement:
    """One client location's measurements against every AP.

    ``snr_db`` maps AP name -> clean SNR at the location.
    ``clean_rate_bps`` maps AP name -> best discrete bitrate at the
    90 %-success criterion with no interference.
    ``interfered_rate_bps`` maps (serving AP, interfering AP) -> best
    discrete bitrate of the *stronger* serving AP while the other AP
    transmits concurrently (the paper's carrier-sense-off measurement).
    """

    location: str
    snr_db: Dict[str, float]
    clean_rate_bps: Dict[str, float] = field(default_factory=dict)
    interfered_rate_bps: Dict[Tuple[str, str], float] = field(default_factory=dict)

    @property
    def ap_names(self) -> List[str]:
        return sorted(self.snr_db)

    def strongest_ap(self) -> str:
        return max(self.snr_db, key=lambda ap: self.snr_db[ap])
