"""Synthetic downlink measurement trace (the Fig. 14 substitution).

The paper: "we co-located 5 Soekris boxes with existing APs in our
department building.  We randomly chose 100 locations in adjacent
classrooms and offices as client locations.  For each client we
recorded the SNR from all the 5 APs.  We also experimentally found the
best bitrate supported by the channel from each AP to this client — the
highest 802.11g bitrate at which 90 % of packets are received
successfully.  Similarly, we also found the bitrate supported to a
client from an AP under interference from other APs."

This generator reproduces that dataset: APs along a corridor, random
client locations, SNRs from the propagation substrate, and the two
discrete-rate measurements emulated through the packet-error model with
the same 90 % criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.phy.error import PacketErrorModel
from repro.phy.noise import thermal_noise_watts
from repro.phy.pathloss import LogDistancePathLoss
from repro.phy.rates import DOT11G, RateTable, best_discrete_rate
from repro.topology.geometry import Point
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.traces.records import DownlinkMeasurement
from repro.util.rng import SeedLike, make_rng
from repro.util.units import db_to_linear, linear_to_db
from repro.util.validation import check_positive


@dataclass(frozen=True)
class DownlinkTraceConfig:
    """Knobs of the synthetic downlink measurement campaign."""

    n_aps: int = 5
    n_locations: int = 100
    corridor_length_m: float = 100.0
    corridor_depth_m: float = 30.0
    tx_power_w: float = DEFAULT_TX_POWER_W
    pathloss_exponent: float = 3.5
    shadowing_sigma_db: float = 5.0
    bandwidth_hz: float = 20e6
    target_success: float = 0.9
    packet_bits: float = 12000.0

    def __post_init__(self) -> None:
        if self.n_aps < 2:
            raise ValueError("need at least two APs for interference pairs")
        if self.n_locations < 1:
            raise ValueError("need at least one location")
        check_positive("corridor_length_m", self.corridor_length_m)
        check_positive("corridor_depth_m", self.corridor_depth_m)
        check_positive("bandwidth_hz", self.bandwidth_hz)
        if not 0.0 < self.target_success < 1.0:
            raise ValueError("target_success must be in (0, 1)")


class DownlinkTraceGenerator:
    """Generates per-location :class:`DownlinkMeasurement` records."""

    def __init__(self, config: DownlinkTraceConfig = DownlinkTraceConfig(),
                 rate_table: RateTable = DOT11G,
                 error_model: PacketErrorModel = PacketErrorModel()):
        self.config = config
        self.rate_table = rate_table
        self.error_model = error_model
        self.noise_w = thermal_noise_watts(config.bandwidth_hz)
        spacing = config.corridor_length_m / (config.n_aps + 1)
        self.ap_positions: List[Tuple[str, Point]] = [
            (f"AP{i + 1}", Point((i + 1) * spacing, config.corridor_depth_m / 2))
            for i in range(config.n_aps)
        ]
        self.propagation = LogDistancePathLoss(
            exponent=config.pathloss_exponent,
            shadowing_sigma_db=config.shadowing_sigma_db,
        )

    # ------------------------------------------------------------------

    def _measure_rates(self, snr_db: Dict[str, float]) -> Tuple[
            Dict[str, float], Dict[Tuple[str, str], float]]:
        """Emulate the 90 %-success bitrate measurements."""
        cfg = self.config
        clean: Dict[str, float] = {}
        for ap, snr in snr_db.items():
            clean[ap] = best_discrete_rate(
                self.rate_table, float(db_to_linear(snr)),
                error_model=self.error_model,
                packet_bits=cfg.packet_bits,
                target_success=cfg.target_success)
        interfered: Dict[Tuple[str, str], float] = {}
        for serving, serving_snr in snr_db.items():
            for interferer, interferer_snr in snr_db.items():
                if serving == interferer:
                    continue
                # SINR of the serving AP while the interferer transmits:
                # both SNRs share the same noise floor, so the linear
                # SINR is s / (i + 1) in noise-normalised units.
                s = float(db_to_linear(serving_snr))
                i = float(db_to_linear(interferer_snr))
                sinr = s / (i + 1.0)
                interfered[(serving, interferer)] = best_discrete_rate(
                    self.rate_table, sinr,
                    error_model=self.error_model,
                    packet_bits=cfg.packet_bits,
                    target_success=cfg.target_success)
        return clean, interfered

    def generate(self, seed: SeedLike = None) -> List[DownlinkMeasurement]:
        """Generate the full measurement campaign."""
        rng = make_rng(seed)
        cfg = self.config
        measurements: List[DownlinkMeasurement] = []
        for loc_idx in range(cfg.n_locations):
            pos = Point(float(rng.uniform(0.0, cfg.corridor_length_m)),
                        float(rng.uniform(0.0, cfg.corridor_depth_m)))
            snr_db: Dict[str, float] = {}
            for ap_name, ap_pos in self.ap_positions:
                d = max(pos.distance_to(ap_pos), 1.0)
                rss = float(self.propagation.received_power(
                    cfg.tx_power_w, d, rng))
                snr_db[ap_name] = float(linear_to_db(rss / self.noise_w))
            clean, interfered = self._measure_rates(snr_db)
            measurements.append(DownlinkMeasurement(
                location=f"L{loc_idx + 1}",
                snr_db=snr_db,
                clean_rate_bps=clean,
                interfered_rate_bps=interfered,
            ))
        return measurements
