"""Synthetic downlink measurement trace (the Fig. 14 substitution).

The paper: "we co-located 5 Soekris boxes with existing APs in our
department building.  We randomly chose 100 locations in adjacent
classrooms and offices as client locations.  For each client we
recorded the SNR from all the 5 APs.  We also experimentally found the
best bitrate supported by the channel from each AP to this client — the
highest 802.11g bitrate at which 90 % of packets are received
successfully.  Similarly, we also found the bitrate supported to a
client from an AP under interference from other APs."

This generator reproduces that dataset: APs along a corridor, random
client locations, SNRs from the propagation substrate, and the two
discrete-rate measurements emulated through the packet-error model with
the same 90 % criterion.

The fast path batches each location's per-AP shadowing draws and RSS
row (:meth:`~repro.phy.pathloss.PropagationModel.received_power_batch`,
bit-identical to the scalar per-link calls) and can fan the
deterministic rate measurements out to worker processes through the
supervised indexed runner; :meth:`DownlinkTraceGenerator.generate_scalar`
is the frozen scalar reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.phy.error import PacketErrorModel
from repro.phy.noise import thermal_noise_watts
from repro.phy.pathloss import LogDistancePathLoss
from repro.phy.rates import DOT11G, RateTable, best_discrete_rate
from repro.topology.geometry import Point
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.traces.records import DownlinkMeasurement
from repro.util.rng import SeedLike, make_rng
from repro.util.timing import PhaseTimer, maybe_phase
from repro.util.units import db_to_linear, linear_to_db
from repro.util.validation import check_positive

#: ``progress(done, total)`` callback — e.g. the CLI's stderr meter.
ProgressFn = Callable[[int, int], None]

#: Locations per chunk when the rate measurement runs pooled.
MEASURE_CHUNK_LOCATIONS = 25


@dataclass(frozen=True)
class DownlinkTraceConfig:
    """Knobs of the synthetic downlink measurement campaign."""

    n_aps: int = 5
    n_locations: int = 100
    corridor_length_m: float = 100.0
    corridor_depth_m: float = 30.0
    tx_power_w: float = DEFAULT_TX_POWER_W
    pathloss_exponent: float = 3.5
    shadowing_sigma_db: float = 5.0
    bandwidth_hz: float = 20e6
    target_success: float = 0.9
    packet_bits: float = 12000.0

    def __post_init__(self) -> None:
        if self.n_aps < 2:
            raise ValueError("need at least two APs for interference pairs")
        if self.n_locations < 1:
            raise ValueError("need at least one location")
        check_positive("corridor_length_m", self.corridor_length_m)
        check_positive("corridor_depth_m", self.corridor_depth_m)
        check_positive("bandwidth_hz", self.bandwidth_hz)
        if not 0.0 < self.target_success < 1.0:
            raise ValueError("target_success must be in (0, 1)")


def _interference_pairs(
        ap_names: Tuple[str, ...]) -> List[Tuple[str, str]]:
    """(serving, interferer) keys in the measurement's serving-major
    order — the iteration order of the scalar ``_measure_rates`` loop."""
    return [(serving, interferer)
            for serving in ap_names
            for interferer in ap_names
            if serving != interferer]


def measure_rates(snr_db: Dict[str, float], rate_table: RateTable,
                  error_model: PacketErrorModel, packet_bits: float,
                  target_success: float) -> Tuple[
                      Dict[str, float], Dict[Tuple[str, str], float]]:
    """Emulate the 90 %-success bitrate measurements for one location.

    Pure in its inputs, so the campaign's measurement phase can fan
    locations out across worker processes without changing results.
    """
    clean: Dict[str, float] = {}
    for ap, snr in snr_db.items():
        clean[ap] = best_discrete_rate(
            rate_table, float(db_to_linear(snr)),
            error_model=error_model,
            packet_bits=packet_bits,
            target_success=target_success)
    interfered: Dict[Tuple[str, str], float] = {}
    for serving, serving_snr in snr_db.items():
        for interferer, interferer_snr in snr_db.items():
            if serving == interferer:
                continue
            # SINR of the serving AP while the interferer transmits:
            # both SNRs share the same noise floor, so the linear
            # SINR is s / (i + 1) in noise-normalised units.
            s = float(db_to_linear(serving_snr))
            i = float(db_to_linear(interferer_snr))
            sinr = s / (i + 1.0)
            interfered[(serving, interferer)] = best_discrete_rate(
                rate_table, sinr,
                error_model=error_model,
                packet_bits=packet_bits,
                target_success=target_success)
    return clean, interfered


@dataclass(frozen=True)
class _MeasureBatch:
    """Picklable chunk config for the pooled rate measurement."""

    snr_rows: Tuple[Tuple[float, ...], ...]
    ap_names: Tuple[str, ...]
    rate_table: RateTable
    error_model: PacketErrorModel
    packet_bits: float
    target_success: float


def _measure_chunk(batch: _MeasureBatch, start: int, n: int) -> Dict[str, np.ndarray]:
    """Rate-measure locations ``[start, start + n)`` of the campaign."""
    n_aps = len(batch.ap_names)
    pair_keys = _interference_pairs(batch.ap_names)
    clean_rows = np.empty((n, n_aps))
    interfered_rows = np.empty((n, len(pair_keys)))
    for k in range(n):
        snr_db = dict(zip(batch.ap_names, batch.snr_rows[start + k]))
        clean, interfered = measure_rates(
            snr_db, batch.rate_table, batch.error_model,
            batch.packet_bits, batch.target_success)
        clean_rows[k] = [clean[ap] for ap in batch.ap_names]
        interfered_rows[k] = [interfered[key] for key in pair_keys]
    return {"clean": clean_rows, "interfered": interfered_rows}


class DownlinkTraceGenerator:
    """Generates per-location :class:`DownlinkMeasurement` records."""

    def __init__(self, config: Optional[DownlinkTraceConfig] = None,
                 rate_table: RateTable = DOT11G,
                 error_model: Optional[PacketErrorModel] = None):
        # DOT11G is a shared module-level constant (immutable table), so
        # it may stay a default; the config and error model are
        # constructed inside (never default arguments — lint RPR305).
        self.config = config = (config if config is not None
                                else DownlinkTraceConfig())
        self.rate_table = rate_table
        self.error_model = (error_model if error_model is not None
                            else PacketErrorModel())
        self.noise_w = thermal_noise_watts(config.bandwidth_hz)
        spacing = config.corridor_length_m / (config.n_aps + 1)
        self.ap_positions: List[Tuple[str, Point]] = [
            (f"AP{i + 1}", Point((i + 1) * spacing, config.corridor_depth_m / 2))
            for i in range(config.n_aps)
        ]
        self.propagation = LogDistancePathLoss(
            exponent=config.pathloss_exponent,
            shadowing_sigma_db=config.shadowing_sigma_db,
        )

    # ------------------------------------------------------------------

    def _measure_rates(self, snr_db: Dict[str, float]) -> Tuple[
            Dict[str, float], Dict[Tuple[str, str], float]]:
        """Emulate the 90 %-success bitrate measurements."""
        cfg = self.config
        return measure_rates(snr_db, self.rate_table, self.error_model,
                             cfg.packet_bits, cfg.target_success)

    def generate(self, seed: SeedLike = None, *,
                 n_workers: int = 1,
                 timer: Optional[PhaseTimer] = None,
                 progress: Optional[ProgressFn] = None,
                 policy: Optional[object] = None) -> List[DownlinkMeasurement]:
        """Generate the full measurement campaign (fast path).

        The SNR rows replay the scalar RNG stream draw for draw (two
        scalar position draws, then one block shadowing draw per
        location); the deterministic rate measurements run per location
        — pooled across ``n_workers`` processes through the supervised
        indexed runner when ``n_workers > 1``.  Results are
        bit-identical to :meth:`generate_scalar` for any seed and any
        worker count (pinned in ``tests/traces/test_downlink.py``).

        ``timer`` phases: ``draw`` / ``measure`` / ``assemble``;
        ``progress(done, total)`` tracks the measurement sweep.
        ``policy`` is an
        :class:`~repro.experiments.runner.ExecutionPolicy` for the
        pooled path (retries, pool rebuilds, worker timeouts).
        """
        rng = make_rng(seed)
        cfg = self.config
        ap_names = tuple(name for name, _ in self.ap_positions)
        ap_xy = [(pos.x, pos.y) for _, pos in self.ap_positions]
        with maybe_phase(timer, "draw"):
            snr_rows = np.empty((cfg.n_locations, len(ap_xy)))
            for loc_idx in range(cfg.n_locations):
                # Per-location draws are the frozen stream: the scalar
                # reference draws x-then-y per location before its block
                # shadowing draw, so the fast path replays that order.
                x = float(rng.uniform(0.0, cfg.corridor_length_m))  # repro-lint: disable=RPR403
                y = float(rng.uniform(0.0, cfg.corridor_depth_m))  # repro-lint: disable=RPR403
                distances = np.array(
                    [max(math.hypot(x - ap_x, y - ap_y), 1.0)
                     for ap_x, ap_y in ap_xy], dtype=float)
                rss = self.propagation.received_power_batch(
                    cfg.tx_power_w, distances, rng)
                snr_rows[loc_idx] = np.asarray(
                    linear_to_db(rss / self.noise_w), dtype=float)
        with maybe_phase(timer, "measure"):
            batch = _MeasureBatch(
                snr_rows=tuple(tuple(row) for row in snr_rows.tolist()),
                ap_names=ap_names, rate_table=self.rate_table,
                error_model=self.error_model, packet_bits=cfg.packet_bits,
                target_success=cfg.target_success)
            if n_workers > 1:
                # Local import: the runner lives in the experiments
                # layer, which itself imports the trace generators.
                from repro.experiments.runner import run_indexed
                merged = run_indexed(
                    "downlink_measure", _measure_chunk, batch,
                    cfg.n_locations, code_version=1, cache_key=None,
                    n_workers=n_workers,
                    chunk_size=MEASURE_CHUNK_LOCATIONS, policy=policy)
                clean_rows = merged["clean"]
                interfered_rows = merged["interfered"]
                if progress is not None:
                    progress(cfg.n_locations, cfg.n_locations)
            else:
                clean_rows = np.empty((cfg.n_locations, len(ap_names)))
                interfered_rows = np.empty(
                    (cfg.n_locations, len(ap_names) * (len(ap_names) - 1)))
                for loc_idx in range(cfg.n_locations):
                    chunk = _measure_chunk(batch, loc_idx, 1)
                    clean_rows[loc_idx] = chunk["clean"][0]
                    interfered_rows[loc_idx] = chunk["interfered"][0]
                    if progress is not None:
                        progress(loc_idx + 1, cfg.n_locations)
        with maybe_phase(timer, "assemble"):
            pair_keys = _interference_pairs(ap_names)
            measurements: List[DownlinkMeasurement] = []
            for loc_idx in range(cfg.n_locations):
                measurements.append(DownlinkMeasurement(
                    location=f"L{loc_idx + 1}",
                    snr_db=dict(zip(ap_names, snr_rows[loc_idx].tolist())),
                    clean_rate_bps=dict(zip(
                        ap_names, clean_rows[loc_idx].tolist())),
                    interfered_rate_bps=dict(zip(
                        pair_keys, interfered_rows[loc_idx].tolist())),
                ))
        return measurements

    def generate_scalar(self, seed: SeedLike = None) -> List[DownlinkMeasurement]:
        """The historical one-link-at-a-time campaign generator,
        behaviourally frozen (PR-1 convention) as the golden reference
        for :meth:`generate`."""
        rng = make_rng(seed)
        cfg = self.config
        measurements: List[DownlinkMeasurement] = []
        for loc_idx in range(cfg.n_locations):
            pos = Point(float(rng.uniform(0.0, cfg.corridor_length_m)),
                        float(rng.uniform(0.0, cfg.corridor_depth_m)))
            snr_db: Dict[str, float] = {}
            for ap_name, ap_pos in self.ap_positions:
                d = max(pos.distance_to(ap_pos), 1.0)
                rss = float(self.propagation.received_power(
                    cfg.tx_power_w, d, rng))
                snr_db[ap_name] = float(linear_to_db(rss / self.noise_w))
            clean, interfered = self._measure_rates(snr_db)
            measurements.append(DownlinkMeasurement(
                location=f"L{loc_idx + 1}",
                snr_db=snr_db,
                clean_rate_bps=clean,
                interfered_rate_bps=interfered,
            ))
        return measurements
