"""Command-line trace generation.

Generate the synthetic trace files the Section-7 evaluations consume::

    python -m repro.traces upload --out building.jsonl --days 14
    python -m repro.traces downlink --out campaign.jsonl --locations 100
    python -m repro.traces inspect building.jsonl

Exit codes follow the operator taxonomy of :mod:`repro.util.errors`:
``0`` ok, ``1`` fatal, ``2`` usage, ``4`` corrupt-state (a torn or
malformed trace file — inspect it before regenerating), ``5``
resumable (interrupted cleanly).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.traces.downlink import DownlinkTraceConfig, DownlinkTraceGenerator
from repro.traces.io import (
    read_downlink_measurements,
    read_upload_trace,
    write_downlink_measurements,
    write_upload_trace,
)
from repro.traces.synthetic import UploadTraceConfig, UploadTraceGenerator
from repro.util.errors import CorruptStateError, run_cli
from repro.util.timing import PhaseTimer


def _progress_printer(kind: str):
    """A ``progress(done, total)`` hook printing coarse milestones."""
    def progress(done: int, total: int) -> None:
        if done == total or done % max(1, total // 4) == 0:
            print(f"  {kind}: {done}/{total}", file=sys.stderr)

    return progress


def _timing_line(timer: PhaseTimer) -> str:
    total = sum(timer.phases.values())
    phases = ", ".join(f"{name} {seconds * 1e3:.0f} ms"
                       for name, seconds in timer.phases.items())
    return f"generated in {total * 1e3:.0f} ms ({phases})"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traces",
        description="Generate or inspect synthetic SIC evaluation traces.")
    sub = parser.add_subparsers(dest="command", required=True)

    upload = sub.add_parser("upload",
                            help="generate a building upload RSSI trace")
    upload.add_argument("--out", required=True, type=Path)
    upload.add_argument("--days", type=float, default=14.0)
    upload.add_argument("--peak-clients", type=float, default=24.0)
    upload.add_argument("--alpha", type=float, default=3.5,
                        help="path-loss exponent")
    upload.add_argument("--shadowing-db", type=float, default=6.0)
    upload.add_argument("--seed", type=int, default=2010)
    upload.add_argument("--progress", action="store_true",
                        help="print generation progress to stderr")

    downlink = sub.add_parser("downlink",
                              help="generate a downlink measurement "
                                   "campaign")
    downlink.add_argument("--out", required=True, type=Path)
    downlink.add_argument("--locations", type=int, default=100)
    downlink.add_argument("--aps", type=int, default=5)
    downlink.add_argument("--alpha", type=float, default=3.5)
    downlink.add_argument("--seed", type=int, default=2010)
    downlink.add_argument("--workers", type=int, default=1,
                          help="worker processes for the rate "
                               "measurements (results are identical "
                               "for any count)")
    downlink.add_argument("--progress", action="store_true",
                          help="print generation progress to stderr")

    inspect = sub.add_parser("inspect",
                             help="summarise an existing trace file")
    inspect.add_argument("path", type=Path)

    return parser


def _cmd_upload(args: argparse.Namespace) -> int:
    config = UploadTraceConfig(duration_days=args.days,
                               peak_clients=args.peak_clients,
                               pathloss_exponent=args.alpha,
                               shadowing_sigma_db=args.shadowing_db)
    timer = PhaseTimer()
    trace = UploadTraceGenerator(config).generate(
        args.seed, timer=timer,
        progress=_progress_printer("snapshots") if args.progress else None)
    write_upload_trace(trace, args.out)
    busy = len(trace.busy_snapshots(2))
    print(f"wrote {args.out}: {len(trace)} snapshots over "
          f"{trace.duration_s / 86400:.1f} days ({busy} with >= 2 clients)")
    print(_timing_line(timer))
    return 0


def _cmd_downlink(args: argparse.Namespace) -> int:
    config = DownlinkTraceConfig(n_locations=args.locations,
                                 n_aps=args.aps,
                                 pathloss_exponent=args.alpha)
    timer = PhaseTimer()
    measurements = DownlinkTraceGenerator(config).generate(
        args.seed, n_workers=args.workers, timer=timer,
        progress=_progress_printer("locations") if args.progress else None)
    write_downlink_measurements(measurements, args.out)
    print(f"wrote {args.out}: {len(measurements)} locations x "
          f"{args.aps} APs")
    print(_timing_line(timer))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    with args.path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
    if not header_line:
        raise CorruptStateError(
            f"{args.path}: empty trace file",
            hint="regenerate it with 'python -m repro.traces upload/"
                 "downlink'")
    try:
        header = json.loads(header_line)
    except ValueError as exc:
        raise CorruptStateError(
            f"{args.path}: unreadable trace header ({exc})",
            hint="the file is torn or not a trace; regenerate it") from exc
    kind = header.get("kind") if isinstance(header, dict) else None
    if kind == "upload-trace":
        trace = _read_or_corrupt(read_upload_trace, args.path)
        sizes = [s.n_clients for s in trace.busy_snapshots(2)]
        print(f"upload trace '{trace.building}': {len(trace)} snapshots, "
              f"{trace.duration_s / 86400:.1f} days, APs: "
              f"{', '.join(trace.ap_names)}")
        if sizes:
            print(f"busy snapshots: {len(sizes)} "
                  f"(clients per AP: min {min(sizes)}, max {max(sizes)})")
        return 0
    if kind == "downlink-measurements":
        measurements = _read_or_corrupt(read_downlink_measurements,
                                        args.path)
        n_aps = len(measurements[0].ap_names) if measurements else 0
        print(f"downlink campaign: {len(measurements)} locations x "
              f"{n_aps} APs")
        if measurements:
            snrs = [snr for m in measurements for snr in m.snr_db.values()]
            print(f"SNR range: {min(snrs):.1f} .. {max(snrs):.1f} dB")
        return 0
    raise CorruptStateError(
        f"{args.path}: unknown trace kind {kind!r}",
        hint="expected 'upload-trace' or 'downlink-measurements'")


def _read_or_corrupt(reader, path: Path):
    """Run a trace reader, reclassifying parse failures as corrupt-state."""
    try:
        return reader(path)
    except ValueError as exc:
        raise CorruptStateError(
            f"{path}: malformed trace ({exc})",
            hint="the file is torn or hand-edited; regenerate it") from exc


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "upload":
        return _cmd_upload(args)
    if args.command == "downlink":
        return _cmd_downlink(args)
    return _cmd_inspect(args)


def entry() -> int:
    """Console-script entry: :func:`main` under the operator taxonomy."""
    return run_cli("repro-traces", main)


if __name__ == "__main__":
    sys.exit(entry())
