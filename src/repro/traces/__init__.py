"""Trace substrate: synthetic stand-ins for the paper's testbed traces.

The paper evaluates on two proprietary datasets we cannot access:

* two weeks of 802.11g RSSI traces from a busy Duke University
  building, parsed into 15-minute association snapshots (Fig. 13);
* link measurements from 5 co-located Soekris APs to 100 client
  locations, recording each link's SNR and its best discrete bitrate at
  90 % packet success, clean and under interference (Fig. 14).

This package generates statistically equivalent synthetic traces from
the propagation substrate (log-distance path loss + log-normal
shadowing), with the same record structure the evaluations consume, and
round-trips them through JSONL files so the experiments can also run
from on-disk traces.
"""

from repro.traces.records import (
    ApSnapshot,
    ClientObservation,
    DownlinkMeasurement,
    UploadTrace,
)
from repro.traces.synthetic import UploadTraceConfig, UploadTraceGenerator
from repro.traces.downlink import DownlinkTraceConfig, DownlinkTraceGenerator
from repro.traces.io import (
    read_downlink_measurements,
    read_upload_trace,
    write_downlink_measurements,
    write_upload_trace,
)

__all__ = [
    "ApSnapshot",
    "ClientObservation",
    "DownlinkMeasurement",
    "DownlinkTraceConfig",
    "DownlinkTraceGenerator",
    "UploadTrace",
    "UploadTraceConfig",
    "UploadTraceGenerator",
    "read_downlink_measurements",
    "read_upload_trace",
    "write_downlink_measurements",
    "write_upload_trace",
]
