"""Synthetic upload trace generation (the Fig. 13 substitution).

The paper: "We collected real world 802.11g link RSSI traces from a
busy building in Duke University over 2 weeks ... we parsed out
topology snapshots (every 15 minutes) that provide sets of wireless
clients associated to each AP.  Using the per-client RSSI at the AP, we
quantified the achievable gains with SIC-aware link-pairing."

The scheduler evaluation therefore consumes only *sets of per-client
RSSI values at each AP, per snapshot*.  This generator reproduces that
input statistically:

* APs on a grid inside a building footprint;
* a client population that churns over time with a diurnal occupancy
  profile (busy around midday, quiet at night — it was "a busy
  building");
* RSSI from log-distance path loss (alpha configurable) plus
  log-normal shadowing, the standard indoor model, re-sampled per
  snapshot so links wobble the way real RSSI traces do;
* association to the strongest AP as observed through the shadowing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.phy.pathloss import LogDistancePathLoss
from repro.topology.geometry import Point, grid_points
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.traces.records import ApSnapshot, ClientObservation, UploadTrace
from repro.util.rng import SeedLike, make_rng
from repro.util.timing import PhaseTimer, maybe_phase
from repro.util.units import watts_to_dbm
from repro.util.validation import check_positive

#: ``progress(done, total)`` callback — e.g. the CLI's stderr meter.
ProgressFn = Callable[[int, int], None]


@dataclass(frozen=True)
class UploadTraceConfig:
    """Knobs of the synthetic building trace."""

    building: str = "synthetic-duke"
    width_m: float = 80.0
    height_m: float = 40.0
    ap_rows: int = 2
    ap_cols: int = 4
    duration_days: float = 14.0
    snapshot_interval_s: float = 15.0 * 60.0
    #: Mean number of active clients in the building at the busiest hour.
    peak_clients: float = 24.0
    #: Fraction of the peak present in the middle of the night.
    night_fraction: float = 0.15
    tx_power_w: float = DEFAULT_TX_POWER_W
    pathloss_exponent: float = 3.5
    shadowing_sigma_db: float = 6.0
    #: Clip RSSI below this (receiver sensitivity floor, dBm).
    sensitivity_dbm: float = -95.0

    def __post_init__(self) -> None:
        check_positive("width_m", self.width_m)
        check_positive("height_m", self.height_m)
        check_positive("duration_days", self.duration_days)
        check_positive("snapshot_interval_s", self.snapshot_interval_s)
        check_positive("peak_clients", self.peak_clients)
        if not 0.0 <= self.night_fraction <= 1.0:
            raise ValueError("night_fraction must be in [0, 1]")
        if self.ap_rows < 1 or self.ap_cols < 1:
            raise ValueError("need at least one AP")

    @property
    def n_aps(self) -> int:
        return self.ap_rows * self.ap_cols

    @property
    def n_snapshots(self) -> int:
        return int(self.duration_days * 24 * 3600 / self.snapshot_interval_s)


def occupancy_factor(time_of_day_s: float, night_fraction: float) -> float:
    """Diurnal occupancy in [night_fraction, 1], peaking at 13:00."""
    hours = (time_of_day_s / 3600.0) % 24.0
    # Cosine bump centred on 13:00 local time.
    bump = 0.5 * (1.0 + math.cos((hours - 13.0) / 24.0 * 2.0 * math.pi))
    return night_fraction + (1.0 - night_fraction) * bump


class UploadTraceGenerator:
    """Generates :class:`UploadTrace` objects from a config and a seed."""

    def __init__(self, config: Optional[UploadTraceConfig] = None):
        # Constructed inside (never a default argument): a shared default
        # instance is the mutable-default trap lint rule RPR305 flags.
        self.config = config = (config if config is not None
                                else UploadTraceConfig())
        spacing_x = config.width_m / (config.ap_cols + 1)
        spacing_y = config.height_m / (config.ap_rows + 1)
        # A slightly irregular grid: regular placement plus nothing else
        # would create artificial RSS symmetry between APs.
        self.ap_positions: List[Tuple[str, Point]] = []
        base = grid_points(config.ap_rows, config.ap_cols,
                           spacing_m=1.0, origin=Point(0.0, 0.0))
        for idx, p in enumerate(base):
            pos = Point((p.x + 1.0) * spacing_x, (p.y + 1.0) * spacing_y)
            self.ap_positions.append((f"AP{idx + 1}", pos))
        self.propagation = LogDistancePathLoss(
            exponent=config.pathloss_exponent,
            shadowing_sigma_db=config.shadowing_sigma_db,
        )

    def generate(self, seed: SeedLike = None,
                 timer: Optional[PhaseTimer] = None,
                 progress: Optional[ProgressFn] = None) -> UploadTrace:
        """Generate the full multi-day trace (vectorised fast path).

        Per snapshot, the client positions come from the same block
        uniform draws the scalar loop made, the full clients x APs RSS
        matrix resolves through one
        :meth:`~repro.phy.pathloss.PropagationModel.received_power_batch`
        call (block shadowing draw, element-exact power law), and the
        strongest-AP association plus sensitivity clipping are array
        operations.  The result — snapshot order, client names, every
        RSSI float — is **bit-identical** to :meth:`generate_scalar`
        for any seed (pinned in ``tests/traces/test_synthetic.py``).

        ``timer`` attributes wall-clock to the ``draw`` / ``rss`` /
        ``assemble`` phases; ``progress(done, total)`` is invoked after
        every snapshot.
        """
        rng = make_rng(seed)
        cfg = self.config
        snapshots: List[ApSnapshot] = []
        client_counter = 0
        n_steps = cfg.n_snapshots
        ap_names = [name for name, _ in self.ap_positions]
        ap_xy = [(pos.x, pos.y) for _, pos in self.ap_positions]
        n_aps = len(ap_xy)
        for step in range(n_steps):
            t = step * cfg.snapshot_interval_s
            factor = occupancy_factor(t, cfg.night_fraction)
            with maybe_phase(timer, "draw"):
                # Per-snapshot draws are the frozen stream: the scalar
                # reference draws count-then-positions once per step, so
                # the fast path must too (only the per-client RSS work
                # is blocked below).
                n_active = int(rng.poisson(cfg.peak_clients * factor))  # repro-lint: disable=RPR403
                if n_active == 0:
                    if progress is not None:
                        progress(step + 1, n_steps)
                    continue
                xs = rng.uniform(0.0, cfg.width_m, size=n_active)  # repro-lint: disable=RPR403
                ys = rng.uniform(0.0, cfg.height_m, size=n_active)  # repro-lint: disable=RPR403
            with maybe_phase(timer, "rss"):
                # math.hypot, not np.hypot: the scalar loop measures
                # through Point.distance_to and np.hypot is 1 ulp off.
                distances = np.empty((n_active, n_aps))
                xs_list, ys_list = xs.tolist(), ys.tolist()
                for k in range(n_active):
                    xk, yk = xs_list[k], ys_list[k]
                    row = distances[k]
                    for a, (ap_x, ap_y) in enumerate(ap_xy):
                        d = math.hypot(xk - ap_x, yk - ap_y)
                        row[a] = d if d > 1.0 else 1.0
                rss = self.propagation.received_power_batch(
                    cfg.tx_power_w, distances, rng)
                # argmax takes the first maximum — same winner as the
                # scalar strict-> scan.
                best = np.argmax(rss, axis=1)
                best_rss = rss[np.arange(n_active), best]
                rssi_dbm = np.asarray(watts_to_dbm(best_rss), dtype=float)
                keep = rssi_dbm >= cfg.sensitivity_dbm
            with maybe_phase(timer, "assemble"):
                per_ap: dict = {name: [] for name in ap_names}
                # Clipped clients still consume a name, as in the
                # scalar loop.
                name_base = client_counter
                client_counter += n_active
                best_list = best.tolist()
                keep_list = keep.tolist()
                rssi_list = rssi_dbm.tolist()
                for k in range(n_active):
                    if keep_list[k]:
                        per_ap[ap_names[best_list[k]]].append(
                            ClientObservation(f"c{name_base + k + 1}",
                                              rssi_list[k]))
                for ap_name, observations in per_ap.items():
                    if observations:
                        snapshots.append(ApSnapshot(
                            ap=ap_name, timestamp_s=t,
                            clients=tuple(observations)))
            if progress is not None:
                progress(step + 1, n_steps)
        return UploadTrace(building=cfg.building,
                           snapshot_interval_s=cfg.snapshot_interval_s,
                           snapshots=tuple(snapshots))

    def generate_scalar(self, seed: SeedLike = None) -> UploadTrace:
        """The historical one-link-at-a-time generator, behaviourally
        frozen (PR-1 convention) as the golden reference and the
        benchmark baseline for :meth:`generate`."""
        rng = make_rng(seed)
        cfg = self.config
        snapshots: List[ApSnapshot] = []
        client_counter = 0
        for step in range(cfg.n_snapshots):
            t = step * cfg.snapshot_interval_s
            factor = occupancy_factor(t, cfg.night_fraction)
            n_active = int(rng.poisson(cfg.peak_clients * factor))
            if n_active == 0:
                continue
            xs = rng.uniform(0.0, cfg.width_m, size=n_active)
            ys = rng.uniform(0.0, cfg.height_m, size=n_active)
            per_ap: dict = {name: [] for name, _ in self.ap_positions}
            for k in range(n_active):
                client_counter += 1
                name = f"c{client_counter}"
                pos = Point(float(xs[k]), float(ys[k]))
                best_ap, best_rss = None, 0.0
                for ap_name, ap_pos in self.ap_positions:
                    d = max(pos.distance_to(ap_pos), 1.0)
                    rss = float(self.propagation.received_power(
                        cfg.tx_power_w, d, rng))
                    if best_ap is None or rss > best_rss:
                        best_ap, best_rss = ap_name, rss
                rssi_dbm = float(watts_to_dbm(best_rss))
                if rssi_dbm < cfg.sensitivity_dbm:
                    continue  # out of coverage: not associated
                per_ap[best_ap].append(ClientObservation(name, rssi_dbm))
            for ap_name, observations in per_ap.items():
                if observations:
                    snapshots.append(ApSnapshot(
                        ap=ap_name, timestamp_s=t,
                        clients=tuple(observations)))
        return UploadTrace(building=cfg.building,
                           snapshot_interval_s=cfg.snapshot_interval_s,
                           snapshots=tuple(snapshots))
