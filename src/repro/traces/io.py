"""JSONL serialisation of traces.

One JSON object per line: upload traces carry a header line followed by
one line per AP snapshot; downlink campaigns carry one line per
location.  JSONL keeps multi-week traces streamable and diff-friendly.

Writers stream into a tmp file and publish with ``os.replace``, so a
process dying mid-write never leaves a torn trace under the final
name — readers either see the previous complete file or the new one.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, TextIO, Union

from repro.traces.records import (
    ApSnapshot,
    ClientObservation,
    DownlinkMeasurement,
    UploadTrace,
)

PathLike = Union[str, Path]


@contextmanager
def _atomic_open(path: Path) -> Iterator[TextIO]:
    """Stream text into ``path`` via tmp file + atomic ``os.replace``."""
    tmp_path = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        # The tmp half of an atomic publish is the legitimate raw write.
        with tmp_path.open("w", encoding="utf-8") as fh:  # repro-lint: disable=RPR306
            yield fh
        os.replace(tmp_path, path)
    finally:
        try:
            tmp_path.unlink()
        except OSError:
            pass


def write_upload_trace(trace: UploadTrace, path: PathLike) -> None:
    """Write an upload trace as JSONL (header + one line per snapshot)."""
    path = Path(path)
    with _atomic_open(path) as fh:
        header = {
            "kind": "upload-trace",
            "building": trace.building,
            "snapshot_interval_s": trace.snapshot_interval_s,
        }
        fh.write(json.dumps(header) + "\n")
        for snap in trace.snapshots:
            record = {
                "ap": snap.ap,
                "timestamp_s": snap.timestamp_s,
                "clients": [[c.client, c.rssi_dbm] for c in snap.clients],
            }
            fh.write(json.dumps(record) + "\n")


def read_upload_trace(path: PathLike) -> UploadTrace:
    """Read an upload trace written by :func:`write_upload_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("kind") != "upload-trace":
            raise ValueError(f"{path}: not an upload trace "
                             f"(kind={header.get('kind')!r})")
        snapshots = []
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                snapshots.append(ApSnapshot(
                    ap=record["ap"],
                    timestamp_s=float(record["timestamp_s"]),
                    clients=tuple(
                        ClientObservation(client=c[0], rssi_dbm=float(c[1]))
                        for c in record["clients"]),
                ))
            except (KeyError, IndexError, TypeError) as exc:
                raise ValueError(f"{path}:{line_no}: malformed snapshot "
                                 f"record") from exc
    return UploadTrace(
        building=header["building"],
        snapshot_interval_s=float(header["snapshot_interval_s"]),
        snapshots=tuple(snapshots),
    )


def write_downlink_measurements(measurements: List[DownlinkMeasurement],
                                path: PathLike) -> None:
    """Write a downlink campaign as JSONL (one line per location)."""
    path = Path(path)
    with _atomic_open(path) as fh:
        header = {"kind": "downlink-measurements", "count": len(measurements)}
        fh.write(json.dumps(header) + "\n")
        for m in measurements:
            record = {
                "location": m.location,
                "snr_db": m.snr_db,
                "clean_rate_bps": m.clean_rate_bps,
                # JSON keys must be strings: encode the AP pair as "a|b".
                "interfered_rate_bps": {
                    f"{serving}|{interferer}": rate
                    for (serving, interferer), rate
                    in m.interfered_rate_bps.items()
                },
            }
            fh.write(json.dumps(record) + "\n")


def read_downlink_measurements(path: PathLike) -> List[DownlinkMeasurement]:
    """Read a campaign written by :func:`write_downlink_measurements`."""
    path = Path(path)
    measurements: List[DownlinkMeasurement] = []
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty measurement file")
        header = json.loads(header_line)
        if header.get("kind") != "downlink-measurements":
            raise ValueError(f"{path}: not a downlink campaign "
                             f"(kind={header.get('kind')!r})")
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                interfered = {}
                for key, rate in record["interfered_rate_bps"].items():
                    serving, _, interferer = key.partition("|")
                    interfered[(serving, interferer)] = float(rate)
                measurements.append(DownlinkMeasurement(
                    location=record["location"],
                    snr_db={k: float(v) for k, v in record["snr_db"].items()},
                    clean_rate_bps={k: float(v) for k, v
                                    in record["clean_rate_bps"].items()},
                    interfered_rate_bps=interfered,
                ))
            except (KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{line_no}: malformed measurement "
                                 f"record") from exc
    return measurements
