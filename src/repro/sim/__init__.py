"""Event-driven WLAN simulator.

The analytic layer (:mod:`repro.sic.airtime`, :mod:`repro.scheduling`)
predicts completion times from closed-form expressions.  This package
*executes* schedules against the operational SIC receiver model
(:class:`repro.sic.receiver.SicReceiver`) in a discrete-event loop, so
integration tests can assert that every scheduled packet actually
decodes and that measured slot durations equal the analytic ones.

* :mod:`repro.sim.engine` — a minimal discrete-event engine;
* :mod:`repro.sim.wlan` — uplink WLAN simulation of a
  :class:`~repro.scheduling.scheduler.Schedule`;
* :mod:`repro.sim.metrics` — per-client and aggregate statistics.
"""

from repro.sim.engine import Event, EventScheduler
from repro.sim.metrics import SimulationMetrics
from repro.sim.wlan import UplinkSimulator, SimulationError

__all__ = [
    "Event",
    "EventScheduler",
    "SimulationError",
    "SimulationMetrics",
    "UplinkSimulator",
]
