"""Uplink WLAN simulation: execute a schedule against the SIC receiver.

The scheduler promises that each slot's transmissions fit in the slot's
duration *and* decode at the AP.  This simulator re-derives each slot's
concrete transmission plan (who transmits when, at which power and
bitrate), plays it through the discrete-event engine, and asks the
operational :class:`~repro.sic.receiver.SicReceiver` whether each packet
actually decodes.  With perfect cancellation every packet must decode
and every measured slot duration must equal the scheduled one — the
integration tests assert both.  With an *imperfect* receiver
(``cancellation_efficiency < 1``) failures surface here, which is how
the imperfection ablation measures SIC's collapse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.phy.shannon import Channel, airtime, shannon_rate
from repro.scheduling.scheduler import Schedule, ScheduledSlot, UploadClient
from repro.sic.receiver import SicReceiver, Transmission
from repro.sim.engine import EventScheduler
from repro.sim.metrics import PacketRecord, SimulationMetrics
from repro.techniques.multirate import multirate_pair_airtime
from repro.techniques.pairing import PairMode
from repro.techniques.power_control import power_controlled_pair_airtime
from repro.util.validation import check_positive


class SimulationError(RuntimeError):
    """Raised in strict mode when a scheduled packet fails to decode."""


@dataclass(frozen=True)
class _PlannedTx:
    """One planned transmission segment inside a slot."""

    client: str
    power_w: float
    rate_bps: float
    bits: float
    offset_s: float        # start offset within the slot
    #: Power of the concurrent signal during this segment (0 if alone).
    concurrent_power_w: float = 0.0
    concurrent_client: str = ""
    #: Planned decode role during the overlap: "strong" (decoded first,
    #: interference-limited) or "weak" (decoded after cancellation).
    #: Resolves the order explicitly when the two powers are equal.
    role: str = ""

    @property
    def duration_s(self) -> float:
        return self.bits / self.rate_bps


@dataclass
class UplinkSimulator:
    """Simulates upload schedules at one SIC-capable AP."""

    channel: Channel = field(default_factory=Channel)
    packet_bits: float = 12000.0
    receiver: SicReceiver = None  # type: ignore[assignment]
    strict: bool = True

    def __post_init__(self) -> None:
        check_positive("packet_bits", self.packet_bits)
        if self.receiver is None:
            self.receiver = SicReceiver(channel=self.channel)
        if self.receiver.channel != self.channel:
            raise ValueError("receiver and simulator must share a channel")

    # ------------------------------------------------------------------
    # Slot planning: reconstruct the concrete PHY plan for each slot.
    # ------------------------------------------------------------------

    def plan_slot(self, slot: ScheduledSlot,
                  rss: Dict[str, float]) -> List[_PlannedTx]:
        """Expand a schedule slot into planned transmission segments."""
        b, n0 = self.channel.bandwidth_hz, self.channel.noise_w
        bits = self.packet_bits

        if not slot.is_pair:
            name = slot.clients[0]
            rate = shannon_rate(b, rss[name], 0.0, n0)
            return [_PlannedTx(name, rss[name], rate, bits, 0.0)]

        name_a, name_b = slot.clients
        rss_a, rss_b = rss[name_a], rss[name_b]
        if rss_a >= rss_b:
            strong_name, strong_rss = name_a, rss_a
            weak_name, weak_rss = name_b, rss_b
        else:
            strong_name, strong_rss = name_b, rss_b
            weak_name, weak_rss = name_a, rss_a

        if slot.mode is PairMode.SERIAL:
            rate_a = shannon_rate(b, rss_a, 0.0, n0)
            rate_b = shannon_rate(b, rss_b, 0.0, n0)
            t_a = float(airtime(bits, rate_a))
            return [
                _PlannedTx(name_a, rss_a, rate_a, bits, 0.0),
                _PlannedTx(name_b, rss_b, rate_b, bits, t_a),
            ]

        if slot.mode is PairMode.SIC:
            rate_strong = shannon_rate(b, strong_rss, weak_rss, n0)
            rate_weak = shannon_rate(b, weak_rss, 0.0, n0)
            return [
                _PlannedTx(strong_name, strong_rss, rate_strong, bits, 0.0,
                           concurrent_power_w=weak_rss,
                           concurrent_client=weak_name, role="strong"),
                _PlannedTx(weak_name, weak_rss, rate_weak, bits, 0.0,
                           concurrent_power_w=strong_rss,
                           concurrent_client=strong_name, role="weak"),
            ]

        if slot.mode is PairMode.SIC_POWER_CONTROL:
            controlled = power_controlled_pair_airtime(
                self.channel, bits, rss_a, rss_b)
            weak_used = controlled.weak_rss_w
            rate_strong = shannon_rate(b, controlled.strong_rss_w,
                                       weak_used, n0)
            rate_weak = shannon_rate(b, weak_used, 0.0, n0)
            return [
                _PlannedTx(strong_name, controlled.strong_rss_w,
                           rate_strong, bits, 0.0,
                           concurrent_power_w=weak_used,
                           concurrent_client=weak_name, role="strong"),
                _PlannedTx(weak_name, weak_used, rate_weak, bits, 0.0,
                           concurrent_power_w=controlled.strong_rss_w,
                           concurrent_client=strong_name, role="weak"),
            ]

        if slot.mode is PairMode.SIC_MULTIRATE:
            plan = multirate_pair_airtime(self.channel, bits, rss_a, rss_b)
            rate_strong_int = shannon_rate(b, strong_rss, weak_rss, n0)
            rate_strong_clean = shannon_rate(b, strong_rss, 0.0, n0)
            rate_weak = shannon_rate(b, weak_rss, 0.0, n0)
            segments = [
                _PlannedTx(weak_name, weak_rss, rate_weak, bits, 0.0,
                           concurrent_power_w=strong_rss,
                           concurrent_client=strong_name, role="weak"),
            ]
            if plan.boost_s > 0.0:
                overlap_bits = rate_strong_int * plan.overlap_s
                boost_bits = bits - overlap_bits
                segments.append(
                    _PlannedTx(strong_name, strong_rss, rate_strong_int,
                               overlap_bits, 0.0,
                               concurrent_power_w=weak_rss,
                               concurrent_client=weak_name, role="strong"))
                segments.append(
                    _PlannedTx(strong_name, strong_rss, rate_strong_clean,
                               boost_bits, plan.overlap_s))
            else:
                segments.append(
                    _PlannedTx(strong_name, strong_rss, rate_strong_int,
                               bits, 0.0,
                               concurrent_power_w=weak_rss,
                               concurrent_client=weak_name, role="strong"))
            return segments

        raise ValueError(f"unknown slot mode {slot.mode!r}")

    def plan_schedule_scalar(self, schedule: Schedule,
                             rss: Dict[str, float]
                             ) -> List[List[_PlannedTx]]:
        """Frozen scalar reference: expand every slot one at a time.

        The historical planning loop, behaviourally frozen (PR-1
        convention): golden reference for the batched
        :meth:`plan_schedule`.
        """
        return [self.plan_slot(slot, rss) for slot in schedule.slots]

    def plan_schedule(self, schedule: Schedule,
                      rss: Dict[str, float]) -> List[List[_PlannedTx]]:
        """Expand all slots, batching the Shannon-rate evaluations.

        Bit-identical to :meth:`plan_schedule_scalar`: solo, SERIAL and
        SIC slots share one vectorised rate call per role while the
        branchy SIC_POWER_CONTROL / SIC_MULTIRATE expansions (and the
        unknown-mode error) keep the per-slot :meth:`plan_slot` path.
        """
        b, n0 = self.channel.bandwidth_hz, self.channel.noise_w
        bits = self.packet_bits
        slots = list(schedule.slots)
        plans: List[List[_PlannedTx]] = [[] for _ in slots]

        solo: List[Tuple[int, str, float]] = []
        serial: List[Tuple[int, str, str, float, float]] = []
        sic: List[Tuple[int, str, str, float, float]] = []
        for index, slot in enumerate(slots):
            if not slot.is_pair:
                name = slot.clients[0]
                solo.append((index, name, rss[name]))
                continue
            name_a, name_b = slot.clients
            rss_a, rss_b = rss[name_a], rss[name_b]
            if slot.mode is PairMode.SERIAL:
                serial.append((index, name_a, name_b, rss_a, rss_b))
            elif slot.mode is PairMode.SIC:
                # Same tie-break as plan_slot: >= keeps the first client
                # as the strong role on exact power ties.
                if rss_a >= rss_b:
                    sic.append((index, name_a, name_b, rss_a, rss_b))
                else:
                    sic.append((index, name_b, name_a, rss_b, rss_a))
            else:
                plans[index] = self.plan_slot(slot, rss)

        if solo:
            rates = shannon_rate(
                b, np.array([power for _, _, power in solo], dtype=float),
                0.0, n0)
            for (index, name, power), rate in zip(
                    solo, np.atleast_1d(rates).tolist()):
                plans[index] = [_PlannedTx(name, power, float(rate),
                                           bits, 0.0)]
        if serial:
            rates_a = shannon_rate(
                b, np.array([s[3] for s in serial], dtype=float), 0.0, n0)
            rates_b = shannon_rate(
                b, np.array([s[4] for s in serial], dtype=float), 0.0, n0)
            for (index, name_a, name_b, rss_a, rss_b), rate_a, rate_b in zip(
                    serial, np.atleast_1d(rates_a).tolist(),
                    np.atleast_1d(rates_b).tolist()):
                t_a = float(airtime(bits, rate_a))
                plans[index] = [
                    _PlannedTx(name_a, rss_a, float(rate_a), bits, 0.0),
                    _PlannedTx(name_b, rss_b, float(rate_b), bits, t_a),
                ]
        if sic:
            strong_p = np.array([s[3] for s in sic], dtype=float)
            weak_p = np.array([s[4] for s in sic], dtype=float)
            rates_strong = shannon_rate(b, strong_p, weak_p, n0)
            rates_weak = shannon_rate(b, weak_p, 0.0, n0)
            for ((index, strong_name, weak_name, strong_rss, weak_rss),
                 rate_strong, rate_weak) in zip(
                    sic, np.atleast_1d(rates_strong).tolist(),
                    np.atleast_1d(rates_weak).tolist()):
                plans[index] = [
                    _PlannedTx(strong_name, strong_rss, float(rate_strong),
                               bits, 0.0,
                               concurrent_power_w=weak_rss,
                               concurrent_client=weak_name, role="strong"),
                    _PlannedTx(weak_name, weak_rss, float(rate_weak),
                               bits, 0.0,
                               concurrent_power_w=strong_rss,
                               concurrent_client=strong_name, role="weak"),
                ]
        return plans

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, schedule: Schedule,
            clients: Sequence[UploadClient]) -> SimulationMetrics:
        """Play a schedule through the event engine; return metrics."""
        rss = {c.name: c.rss_w for c in clients}
        missing = [n for slot in schedule.slots for n in slot.clients
                   if n not in rss]
        if missing:
            raise ValueError(f"schedule references unknown clients {missing}")

        engine = EventScheduler()
        metrics = SimulationMetrics()
        slots = list(schedule.slots)
        # One batched planning pass up front (bit-identical to planning
        # inside the loop; planning errors now surface before any event
        # fires instead of mid-run).
        plans = self.plan_schedule(schedule, rss)

        def start_slot(index: int) -> None:
            if index >= len(slots):
                return
            segments = plans[index]
            slot_start = engine.now_s
            slot_end = slot_start
            for seg in segments:
                begin = slot_start + seg.offset_s
                end = begin + seg.duration_s
                slot_end = max(slot_end, end)

                def finish(seg=seg, begin=begin, end=end) -> None:
                    decoded = self._decode(seg)
                    metrics.record(PacketRecord(
                        client=seg.client,
                        start_s=begin,
                        end_s=end,
                        rate_bps=seg.rate_bps,
                        bits=seg.bits,
                        decoded=decoded,
                        concurrent_with=((seg.concurrent_client,)
                                         if seg.concurrent_client else ()),
                    ))
                    if self.strict and not decoded:
                        raise SimulationError(
                            f"packet from {seg.client} failed to decode "
                            f"(rate {seg.rate_bps:.3g} bps, "
                            f"power {seg.power_w:.3g} W, concurrent "
                            f"{seg.concurrent_power_w:.3g} W)")

                engine.schedule_at(end, finish, label=f"end:{seg.client}")
            engine.schedule_at(slot_end, lambda: start_slot(index + 1),
                               label=f"slot:{index + 1}")

        if slots:
            engine.schedule_at(0.0, lambda: start_slot(0), label="slot:0")
        engine.run()
        return metrics

    # ------------------------------------------------------------------
    # Group (k-SIC) schedules
    # ------------------------------------------------------------------

    def run_groups(self, schedule, clients: Sequence[UploadClient],
                   receiver=None,
                   planned_efficiency: float = 1.0) -> SimulationMetrics:
        """Execute a :class:`~repro.scheduling.groups.GroupSchedule`.

        Transmission rates are re-derived with ``planned_efficiency``
        (what the *scheduler* assumed — 1.0 by default, matching
        :func:`repro.scheduling.groups.greedy_group_schedule`); the
        possibly different ``receiver`` (default: perfect, unbounded
        :class:`~repro.sic.ksic.SuccessiveReceiver`) then judges them.
        As with :meth:`run`, strict mode raises if any scheduled packet
        fails to decode.
        """
        from repro.sic.ksic import (
            SuccessiveReceiver,
            successive_rate_limits,
        )

        if receiver is None:
            receiver = SuccessiveReceiver(channel=self.channel)
        rss = {c.name: c.rss_w for c in clients}
        missing = [n for slot in schedule.slots for n in slot.clients
                   if n not in rss]
        if missing:
            raise ValueError(f"schedule references unknown clients {missing}")

        engine = EventScheduler()
        metrics = SimulationMetrics()
        slots = list(schedule.slots)
        bits = self.packet_bits
        b, n0 = self.channel.bandwidth_hz, self.channel.noise_w

        def start_slot(index: int) -> None:
            if index >= len(slots):
                return
            slot = slots[index]
            slot_start = engine.now_s
            powers = [rss[name] for name in slot.clients]
            if slot.used_sic and len(slot.clients) > 1:
                rates = successive_rate_limits(self.channel, powers,
                                               planned_efficiency)
                txs = [Transmission(p, r, name) for name, p, r
                       in zip(slot.clients, powers, rates)]
                outcome = receiver.resolve(txs)
                slot_end = slot_start
                for name, power, rate, ok in zip(slot.clients, powers,
                                                 rates, outcome.decoded):
                    end = slot_start + bits / rate
                    slot_end = max(slot_end, end)
                    others = tuple(n for n in slot.clients if n != name)

                    def finish(name=name, power=power, rate=rate, ok=ok,
                               end=end, others=others,
                               begin=slot_start) -> None:
                        metrics.record(PacketRecord(
                            client=name, start_s=begin, end_s=end,
                            rate_bps=rate, bits=bits, decoded=ok,
                            concurrent_with=others))
                        if self.strict and not ok:
                            raise SimulationError(
                                f"group packet from {name} failed to "
                                f"decode")

                    engine.schedule_at(end, finish, label=f"end:{name}")
            else:
                # Serialised slot: members go one after another, clean.
                offset = 0.0
                slot_end = slot_start
                for name in slot.clients:
                    rate = shannon_rate(b, rss[name], 0.0, n0)
                    begin = slot_start + offset
                    end = begin + bits / rate
                    offset += bits / rate
                    slot_end = max(slot_end, end)

                    def finish(name=name, rate=rate, begin=begin,
                               end=end) -> None:
                        tx = Transmission(rss[name], rate, name)
                        ok = self.receiver.decode_single(tx)
                        metrics.record(PacketRecord(
                            client=name, start_s=begin, end_s=end,
                            rate_bps=rate, bits=bits, decoded=ok))
                        if self.strict and not ok:
                            raise SimulationError(
                                f"solo packet from {name} failed to decode")

                    engine.schedule_at(end, finish, label=f"end:{name}")
            engine.schedule_at(slot_end, lambda: start_slot(index + 1),
                               label=f"slot:{index + 1}")

        if slots:
            engine.schedule_at(0.0, lambda: start_slot(0), label="slot:0")
        engine.run()
        return metrics

    def _decode(self, seg: _PlannedTx) -> bool:
        """Ask the operational receiver whether this segment decodes."""
        tx = Transmission(seg.power_w, seg.rate_bps, seg.client)
        if seg.concurrent_power_w <= 0.0:
            return self.receiver.decode_single(tx)
        # The planned decode role breaks exact power ties: at equal RSS
        # either order is physically available and the plan fixes one.
        if seg.role == "strong" or (seg.role == ""
                                    and seg.power_w
                                    > seg.concurrent_power_w):
            limit = self.receiver.strong_rate_limit(
                seg.power_w, seg.concurrent_power_w)
            return seg.rate_bps <= limit
        # This segment is the weaker signal: it decodes only if the
        # receiver could decode it after cancelling the stronger one.
        # The stronger partner's actual rate does not matter for the
        # weak side's limit, only the cancellation residue does, so we
        # compare against the weak rate limit directly.
        return (self.receiver.sic_enabled
                and seg.rate_bps <= self.receiver.weak_rate_limit(
                    seg.concurrent_power_w, seg.power_w))
    # NOTE: in a real SIC chain the weak packet also requires the strong
    # packet to decode first; the strict integration tests cover that by
    # checking the strong segment's own decode outcome in the same slot.
