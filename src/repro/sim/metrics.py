"""Simulation metrics: per-client and aggregate upload statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class PacketRecord:
    """One simulated packet: who sent it, when, at what rate, outcome."""

    client: str
    start_s: float
    end_s: float
    rate_bps: float
    bits: float
    decoded: bool
    concurrent_with: Tuple[str, ...] = ()

    @property
    def airtime_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class SimulationMetrics:
    """Accumulates packet records and derives summary statistics."""

    packets: List[PacketRecord] = field(default_factory=list)

    def record(self, packet: PacketRecord) -> None:
        self.packets.append(packet)

    @property
    def completion_time_s(self) -> float:
        """Time the last packet finished (0 for an empty run)."""
        return max((p.end_s for p in self.packets), default=0.0)

    @property
    def delivered_bits(self) -> float:
        return sum(p.bits for p in self.packets if p.decoded)

    @property
    def failed_count(self) -> int:
        return sum(1 for p in self.packets if not p.decoded)

    @property
    def all_decoded(self) -> bool:
        return self.failed_count == 0 and bool(self.packets)

    @property
    def throughput_bps(self) -> float:
        total = self.completion_time_s
        if total <= 0.0:
            return 0.0
        return self.delivered_bits / total

    def per_client(self) -> Dict[str, Dict[str, float]]:
        """Per-client airtime / bits / packet counts."""
        stats: Dict[str, Dict[str, float]] = {}
        for p in self.packets:
            entry = stats.setdefault(p.client, {
                "airtime_s": 0.0, "bits": 0.0, "packets": 0.0, "failed": 0.0,
            })
            entry["airtime_s"] += p.airtime_s
            entry["packets"] += 1.0
            if p.decoded:
                entry["bits"] += p.bits
            else:
                entry["failed"] += 1.0
        return stats

    def concurrency_fraction(self) -> float:
        """Fraction of packets sent while another was on the air."""
        if not self.packets:
            return 0.0
        overlapped = sum(1 for p in self.packets if p.concurrent_with)
        return overlapped / len(self.packets)
