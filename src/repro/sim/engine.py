"""A minimal discrete-event simulation engine.

Deliberately small: a time-ordered heap of events, monotonically
advancing clock, cancellation, and a run loop.  Everything the WLAN
simulation needs and nothing more.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: time, then insertion sequence."""

    time_s: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    # Bookkeeping for the scheduler's O(1) pending counter; not part
    # of the construction or comparison contract.
    _scheduler: Optional["EventScheduler"] = field(
        default=None, compare=False, repr=False, init=False)
    _popped: bool = field(default=False, compare=False, repr=False,
                          init=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._scheduler is not None and not self._popped:
            self._scheduler._note_cancelled()


class EventScheduler:
    """Time-ordered event loop with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._pending = 0

    @property
    def now_s(self) -> float:
        return self._now

    @property
    def processed_count(self) -> int:
        return self._processed

    @property
    def pending_count(self) -> int:
        # Maintained incrementally (push / cancel / pop) so large heaps
        # are not rescanned on every poll.
        return self._pending

    def _note_cancelled(self) -> None:
        self._pending -= 1

    def schedule_at(self, time_s: float, callback: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``time_s``."""
        if time_s < self._now:
            raise ValueError(
                f"cannot schedule into the past: {time_s} < now {self._now}")
        event = Event(time_s, next(self._counter), callback, label=label)
        event._scheduler = self
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def schedule_after(self, delay_s: float, callback: Callable[[], None],
                       label: str = "") -> Event:
        """Schedule ``callback`` ``delay_s`` from the current time."""
        if delay_s < 0.0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        return self.schedule_at(self._now + delay_s, callback, label)

    def step(self) -> Optional[Event]:
        """Process the next pending event; None when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._popped = True
            if event.cancelled:
                # Already subtracted from the pending counter when it
                # was cancelled; just discard the heap entry.
                continue
            self._pending -= 1
            self._now = event.time_s
            self._processed += 1
            event.callback()
            return event
        return None

    def run(self, until_s: Optional[float] = None,
            max_events: int = 10_000_000) -> float:
        """Run until the heap drains, ``until_s`` passes, or the event
        budget is exhausted.  Returns the final clock value."""
        for _ in range(max_events):
            if until_s is not None and self._heap:
                head = self._heap[0]
                if head.time_s > until_s:
                    self._now = until_s
                    return self._now
            if self.step() is None:
                return self._now
        raise RuntimeError(f"event budget of {max_events} exhausted; "
                           f"likely a scheduling loop")
