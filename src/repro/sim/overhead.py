"""802.11 MAC overheads — the realism knob the paper deliberately omits.

The analysis "discount[s] MAC related overheads such as backoff"
(Section 3).  This module restores them so users can ask how the SIC
gains survive contact with DIFS, backoff, preambles, SIFS and ACKs:

* a serial schedule pays one full channel access per packet;
* a SIC slot shares one channel access between its concurrent packets
  but still owes one SIFS + ACK per packet (each packet must be
  acknowledged individually — the ACK design for SIC receivers is
  exactly the open issue the paper cites from Halperin et al.).

An interesting consequence, quantified by the overhead ablation bench:
fixed per-access costs *favour* SIC slightly, because pairing halves
the number of channel accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_nonnegative


@dataclass(frozen=True)
class MacOverheads:
    """Per-access and per-packet MAC time costs (seconds)."""

    difs_s: float = 28e-6
    mean_backoff_s: float = 67.5e-6          # CWmin/2 slots of 9 us
    phy_preamble_s: float = 20e-6
    sifs_s: float = 10e-6
    ack_s: float = 24e-6                     # ACK frame at a basic rate

    def __post_init__(self) -> None:
        for name in ("difs_s", "mean_backoff_s", "phy_preamble_s",
                     "sifs_s", "ack_s"):
            check_nonnegative(name, getattr(self, name))

    @property
    def per_access_s(self) -> float:
        """Cost paid once per channel access (contention + preamble)."""
        return self.difs_s + self.mean_backoff_s + self.phy_preamble_s

    @property
    def per_packet_s(self) -> float:
        """Cost paid per delivered packet (its acknowledgement)."""
        return self.sifs_s + self.ack_s

    def slot_overhead_s(self, n_packets: int) -> float:
        """Total overhead of one slot carrying ``n_packets`` packets."""
        if n_packets < 0:
            raise ValueError("n_packets must be >= 0")
        if n_packets == 0:
            return 0.0
        return self.per_access_s + n_packets * self.per_packet_s


#: Standard 802.11g timing.
DOT11G_OVERHEADS = MacOverheads()

#: The paper's idealisation: no MAC overheads at all.
NO_OVERHEADS = MacOverheads(difs_s=0.0, mean_backoff_s=0.0,
                            phy_preamble_s=0.0, sifs_s=0.0, ack_s=0.0)


@dataclass(frozen=True)
class OverheadedSchedule:
    """A schedule's times after MAC overheads are applied."""

    airtime_s: float
    overhead_s: float
    serial_airtime_s: float
    serial_overhead_s: float

    @property
    def total_time_s(self) -> float:
        return self.airtime_s + self.overhead_s

    @property
    def serial_total_s(self) -> float:
        return self.serial_airtime_s + self.serial_overhead_s

    @property
    def gain(self) -> float:
        total = self.total_time_s
        if total <= 0.0:
            return 1.0
        return self.serial_total_s / total

    @property
    def overhead_fraction(self) -> float:
        total = self.total_time_s
        if total <= 0.0:
            return 0.0
        return self.overhead_s / total


def apply_overheads(schedule,
                    overheads: MacOverheads = DOT11G_OVERHEADS
                    ) -> OverheadedSchedule:
    """Add MAC overheads to a schedule and its serial baseline.

    Each schedule slot is one channel access carrying one packet per
    listed client; the serial baseline pays a full access per packet.
    Accepts anything with the ``slots`` / ``total_time_s`` /
    ``serial_time_s`` surface — both the pair
    :class:`~repro.scheduling.scheduler.Schedule` and the k-SIC
    :class:`~repro.scheduling.groups.GroupSchedule`.
    """
    overhead = sum(overheads.slot_overhead_s(len(slot.clients))
                   for slot in schedule.slots)
    n_packets = sum(len(slot.clients) for slot in schedule.slots)
    serial_overhead = n_packets * overheads.slot_overhead_s(1)
    return OverheadedSchedule(
        airtime_s=schedule.total_time_s,
        overhead_s=overhead,
        serial_airtime_s=schedule.serial_time_s,
        serial_overhead_s=serial_overhead,
    )
