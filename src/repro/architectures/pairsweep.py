"""Shared batched evaluation for the architecture pair sweeps.

The EWLAN and residential studies both reduce to the same shape of
work: sample thousands of cross-AP / cross-home transmitter pairs, turn
link distances into RSS, and classify each pair against the Fig. 5
taxonomy.  This module holds the pieces both engines share:

* :class:`PairDistanceBatch` — the picklable chunk config carrying the
  pre-sampled link geometry (and pre-drawn shadowing) of N pairs;
* :func:`pair_scenario_chunk` — the pure chunk function the supervised
  indexed runner fans out to worker processes;
* the aggregation helpers that rebuild the scalar engines' report
  fields bit for bit from the merged arrays.

The split keeps the generator stream entirely in the sampling phase
(distances and shadowing draws happen in the driver, replaying the
scalar stream draw for draw), so every chunk is a pure function of
``(config, start, n)`` and the merged result is independent of chunk
size and worker count — the property the golden tests pin.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.phy.pathloss import PropagationModel
from repro.phy.shannon import Channel
from repro.sic.scenarios import (
    CASE_ORDER,
    PairCase,
    evaluate_pair_scenario_batch,
)
from repro.util.units import db_to_linear

#: Sampled pairs per supervised chunk — fixed (not derived from the
#: worker count) so the chunk layout, and with it every cache and
#: checkpoint key, is identical for serial and parallel runs.
PAIR_CHUNK = 512


@dataclass(frozen=True)
class PairDistanceBatch:
    """Picklable chunk config: pre-sampled link geometry of N pairs.

    ``distances_m[k]`` holds the four near-field-clamped Tx-Rx
    distances of pair ``k`` in ``(s11, s12, s21, s22)`` order;
    ``shadow_db`` carries the pre-drawn log-normal shadowing
    realisations in the same layout (``None`` for deterministic
    propagation).  Pre-drawing keeps all generator state in the
    sampling phase, which is what makes the chunks pure.
    """

    distances_m: np.ndarray
    shadow_db: Optional[np.ndarray]
    tx_power_w: float
    packet_bits: float
    channel: Channel
    propagation: PropagationModel


def pair_scenario_chunk(batch: PairDistanceBatch, start: int,
                        n: int) -> Dict[str, np.ndarray]:
    """Evaluate pairs ``[start, start + n)`` of a pre-sampled batch.

    Replays the scalar RSS pipeline step for step — per-element path
    gain (:meth:`~repro.phy.pathloss.PropagationModel.path_gain_batch`),
    multiply by tx power, apply the pre-drawn shadowing through
    ``db_to_linear`` — each step pinned bit-identical to the scalar
    ``received_power`` call — then the batched Fig. 5 analysis.
    """
    distances = batch.distances_m[start:start + n]
    gain = batch.propagation.path_gain_batch(distances)
    power = batch.tx_power_w * np.asarray(gain, dtype=float)
    if batch.shadow_db is not None:
        linear = np.asarray(db_to_linear(batch.shadow_db[start:start + n]),
                            dtype=float)
        power = power * linear
    scenarios = evaluate_pair_scenario_batch(
        batch.channel, batch.packet_bits,
        power[:, 0], power[:, 1], power[:, 2], power[:, 3])
    return {"case_codes": scenarios.case_codes,
            "sic_feasible": scenarios.sic_feasible,
            "gains": scenarios.gains}


def sorted_case_fractions(case_codes: np.ndarray,
                          n_pairs: int) -> Dict[PairCase, float]:
    """Observed-case mix keyed in Fig. 5 letter order.

    Deterministically ordered (unlike ``Counter`` insertion order) and
    value-identical to the scalar engines' ``count / n_pairs`` integer
    divisions; cases that never occurred are omitted, matching the
    scalar bookkeeping.
    """
    counts = np.bincount(case_codes, minlength=len(CASE_ORDER))
    return {case: int(count) / n_pairs
            for case, count in zip(CASE_ORDER, counts) if count}


def sequential_sum(values: np.ndarray) -> float:
    """Left-to-right Python accumulation over ``values``.

    Matches the scalar engines' ``total += gain`` loop exactly;
    ``np.sum`` associates terms pairwise and rounds differently.
    """
    total = 0.0
    for value in values.tolist():
        total += value
    return total


def pair_sweep_cache_key(architecture: str, params: Mapping[str, object],
                         channel: Channel, propagation: PropagationModel,
                         seed_token: object) -> Optional[Dict[str, object]]:
    """Worker-count-invariant cache key for one architecture sweep.

    ``None`` (uncacheable — no result cache, no checkpoints) when the
    seed has no stable token (OS entropy, stateful generators) or the
    propagation model is not a dataclass the key can canonicalise.
    """
    if seed_token is None or not dataclasses.is_dataclass(propagation):
        return None
    return {"architecture": architecture,
            **dict(params),
            "channel": dataclasses.asdict(channel),
            "propagation": {"model": type(propagation).__name__,
                            **dataclasses.asdict(propagation)},
            "seed": seed_token}
