"""Architecture-level analyses (paper Section 4).

The paper walks three deployment archetypes and asks where SIC pays:

* :mod:`repro.architectures.ewlan` — enterprise WLANs (Fig. 7a):
  upload to a shared AP benefits; nearest-AP association makes the
  cross-AP cases capture-dominated, so SIC is not needed there;
* :mod:`repro.architectures.residential` — apartment rows (Fig. 7b):
  the WPA lock to the home AP *creates* SIC opportunities, but they
  are rare and worth little under ideal rate adaptation;
* :mod:`repro.architectures.mesh` — multihop chains (Fig. 7c):
  long-short-long hop patterns enable SIC at the middle node
  (self-interference overlap), equalised chains break it.

Each sweep ships as a frozen scalar reference (``*_scalar``) plus a
batched fast path that is bit-identical to it — see
``docs/architecture_performance.md``.
"""

from repro.architectures.ewlan import (
    EwlanCrossPairReport,
    evaluate_ewlan_cross_pairs,
    evaluate_ewlan_cross_pairs_scalar,
)
from repro.architectures.mesh import (
    ChainAnalysis,
    analyse_chain,
    sweep_chain_geometries,
    sweep_chain_geometries_scalar,
)
from repro.architectures.residential import (
    ResidentialReport,
    evaluate_residential_rows,
    evaluate_residential_rows_scalar,
    residential_downlink_pairs,
)

__all__ = [
    "ChainAnalysis",
    "EwlanCrossPairReport",
    "ResidentialReport",
    "analyse_chain",
    "evaluate_ewlan_cross_pairs",
    "evaluate_ewlan_cross_pairs_scalar",
    "evaluate_residential_rows",
    "evaluate_residential_rows_scalar",
    "residential_downlink_pairs",
    "sweep_chain_geometries",
    "sweep_chain_geometries_scalar",
]
