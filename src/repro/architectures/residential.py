"""Residential WLAN analysis (paper Section 4.2).

In an apartment row each client is WPA-locked to its own home's AP even
when a neighbour's AP is closer.  "Strangely, this restriction provides
some opportunities for SIC": a client whose own AP is *farther* than
the neighbour's can decode the neighbour's stronger downlink packet,
cancel it, and extract its own — letting both homes' downlinks run
concurrently.

This module samples cross-home downlink pairs from random apartment
rows, classifies each against the Fig. 5 taxonomy, and summarises how
often the lock creates a usable opportunity and what it is worth.  The
paper's own bottom line — opportunities exist but two-receiver gains
stay negligible under ideal rate adaptation — is exactly what the
numbers show.

Fast path (``docs/architecture_performance.md``): the driver replays
the scalar sampling stream draw for draw — block uniforms for each
row's AP / client placements, per-pair index draws and shadowing
normals — then fans the pre-sampled pairs out through the supervised
indexed runner and classifies each chunk in one array pass.
:func:`evaluate_residential_rows_scalar` freezes the historical
per-pair loop as the golden reference.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.architectures.pairsweep import (
    PAIR_CHUNK,
    PairDistanceBatch,
    pair_scenario_chunk,
    pair_sweep_cache_key,
    sorted_case_fractions,
)
from repro.experiments.runner import (
    ExecutionPolicy,
    run_indexed,
    seed_cache_token,
)
from repro.phy.pathloss import LogDistancePathLoss, PropagationModel
from repro.phy.shannon import Channel
from repro.sic.scenarios import (
    CASE_ORDER,
    PairCase,
    PairRss,
    evaluate_pair_scenario,
)
from repro.topology.generators import WlanTopology, residential_row
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.util.cache import ResultCache
from repro.util.cdf import gain_cdf_summary
from repro.util.rng import SeedLike, make_rng
from repro.util.timing import PhaseTimer, maybe_phase
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ResidentialReport:
    """Summary of cross-home downlink SIC opportunities."""

    n_pairs: int
    case_fractions: Dict[PairCase, float]
    sic_feasible_fraction: float
    gain_summary: Dict[str, float]

    @property
    def opportunity_fraction(self) -> float:
        """Pairs where someone needs SIC *and* the interferer decodes."""
        return self.sic_feasible_fraction

    def rows(self) -> List[Tuple[str, float]]:
        """Report rows in deterministic Fig. 5 case order."""
        rows: List[Tuple[str, float]] = [
            (f"case_{case.value}", self.case_fractions[case])
            for case in CASE_ORDER if case in self.case_fractions]
        rows.append(("sic_feasible", self.sic_feasible_fraction))
        rows.append(("median_gain", self.gain_summary["median"]))
        return rows


def residential_downlink_pairs(topology: WlanTopology,
                               propagation: PropagationModel,
                               rng,
                               tx_power_w: float = DEFAULT_TX_POWER_W,
                               ) -> Iterator[PairRss]:
    """Yield PairRss for concurrent downlinks of adjacent homes.

    Transmitter 1 is the left home's AP serving one of its own clients
    (receiver 1); transmitter 2 the right home's AP serving one of its
    clients — the residential lock in action.
    """
    needs_rng = getattr(propagation, "shadowing_sigma_db", 0.0) > 0.0

    def rss(tx_node, rx_node) -> float:
        distance = max(tx_node.distance_to(rx_node), 1.0)
        return float(propagation.received_power(
            tx_power_w, distance, rng if needs_rng else None))

    for left, right in zip(topology.aps, topology.aps[1:]):
        left_clients = topology.clients_of(left.name)
        right_clients = topology.clients_of(right.name)
        if not left_clients or not right_clients:
            continue
        r1 = left_clients[int(rng.integers(len(left_clients)))]
        r2 = right_clients[int(rng.integers(len(right_clients)))]
        yield PairRss(
            s11=rss(left, r1), s12=rss(right, r1),
            s21=rss(left, r2), s22=rss(right, r2))


def evaluate_residential_rows_scalar(
        n_rows: int = 400,
        n_homes: int = 4,
        home_width_m: float = 10.0,
        clients_per_home: int = 2,
        packet_bits: float = 12_000.0,
        channel: Optional[Channel] = None,
        propagation: Optional[PropagationModel] = None,
        seed: SeedLike = None) -> ResidentialReport:
    """Frozen scalar reference: Monte-Carlo rows, pair by pair.

    The historical per-pair loop, behaviourally frozen (PR-1
    convention): golden reference and benchmark baseline for the
    batched :func:`evaluate_residential_rows`.
    """
    if n_rows < 1:
        raise ValueError("need at least one row")
    check_positive("packet_bits", packet_bits)
    channel = channel or Channel()
    # Indoor shadowing creates the RSS inversions (own AP weaker than
    # the neighbour's) that the paper's §4.2 scenario relies on.
    propagation = propagation or LogDistancePathLoss(
        exponent=3.5, shadowing_sigma_db=6.0)
    rng = make_rng(seed)

    cases: Counter = Counter()
    feasible = 0
    gains: List[float] = []
    for _ in range(n_rows):
        topology = residential_row(n_homes, home_width_m,
                                   clients_per_home, rng)
        for rss in residential_downlink_pairs(topology, propagation, rng):
            scenario = evaluate_pair_scenario(channel, packet_bits, rss)
            cases[scenario.case] += 1
            feasible += scenario.sic_feasible
            gains.append(scenario.gain)

    if not gains:
        raise RuntimeError("no cross-home pairs sampled")
    n_pairs = len(gains)
    return ResidentialReport(
        n_pairs=n_pairs,
        case_fractions={case: cases[case] / n_pairs
                        for case in CASE_ORDER if case in cases},
        sic_feasible_fraction=feasible / n_pairs,
        gain_summary=gain_cdf_summary(gains),
    )


def _sample_cross_home_distances(
        n_rows: int, n_homes: int, home_width_m: float,
        clients_per_home: int, rng, shadowing_sigma_db: float,
        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Replay the scalar sampling stream; return link geometry arrays.

    Consumes ``rng`` exactly as ``residential_row`` plus the scalar
    pair generator do.  The row's 2 + 2·clients scalar ``uniform``
    draws per home are replayed from one block of raw doubles using
    the pinned ``low + (high - low) * u`` identity, then each adjacent
    home pair draws two client indices and (under shadowing) one block
    of four normals in ``(s11, s12, s21, s22)`` order.  AP-to-client
    distances use ``math.hypot`` with the scalar argument order so the
    clamped link lengths match the scalar topology bit for bit.
    """
    if n_homes < 1:
        raise ValueError("need at least one home")
    if clients_per_home < 0:
        raise ValueError("clients_per_home must be non-negative")
    check_positive("home_width_m", home_width_m)
    per_home = 2 + 2 * clients_per_home

    distance_rows: List[Tuple[float, float, float, float]] = []
    shadow_rows: List[np.ndarray] = []
    for _ in range(n_rows):
        # One block of raw doubles per row == the row's sequential
        # scalar uniform() calls (each consumes one double).
        u = rng.random(size=n_homes * per_home)
        ap_x: List[float] = []
        ap_y: List[float] = []
        cx: List[List[float]] = []
        cy: List[List[float]] = []
        for h in range(n_homes):
            left = h * home_width_m
            at = h * per_home
            # uniform(0.2, 0.8) == 0.2 + (0.8 - 0.2) * u — keep the
            # subtraction so rounding matches the scalar draw exactly.
            ap_x.append(left + (0.2 + (0.8 - 0.2) * float(u[at]))
                        * home_width_m)
            ap_y.append(2.0 + (8.0 - 2.0) * float(u[at + 1]))
            xs: List[float] = []
            ys: List[float] = []
            for j in range(clients_per_home):
                xs.append(left + home_width_m * float(u[at + 2 + 2 * j]))
                ys.append(10.0 * float(u[at + 3 + 2 * j]))
            cx.append(xs)
            cy.append(ys)
        if clients_per_home < 1:
            continue
        for h in range(n_homes - 1):
            r1 = int(rng.integers(clients_per_home))
            r2 = int(rng.integers(clients_per_home))
            x1, y1 = cx[h][r1], cy[h][r1]
            x2, y2 = cx[h + 1][r2], cy[h + 1][r2]
            distance_rows.append(
                (max(math.hypot(ap_x[h] - x1, ap_y[h] - y1), 1.0),
                 max(math.hypot(ap_x[h + 1] - x1, ap_y[h + 1] - y1), 1.0),
                 max(math.hypot(ap_x[h] - x2, ap_y[h] - y2), 1.0),
                 max(math.hypot(ap_x[h + 1] - x2, ap_y[h + 1] - y2), 1.0)))
            if shadowing_sigma_db > 0.0:
                shadow_rows.append(
                    rng.normal(0.0, shadowing_sigma_db, size=4))

    distances = np.array(distance_rows, dtype=float).reshape(-1, 4)
    shadow = np.array(shadow_rows, dtype=float).reshape(-1, 4) \
        if shadowing_sigma_db > 0.0 else None
    return distances, shadow


def evaluate_residential_rows(n_rows: int = 400,
                              n_homes: int = 4,
                              home_width_m: float = 10.0,
                              clients_per_home: int = 2,
                              packet_bits: float = 12_000.0,
                              channel: Optional[Channel] = None,
                              propagation: Optional[PropagationModel] = None,
                              seed: SeedLike = None,
                              *,
                              n_workers: int = 1,
                              chunk_size: Optional[int] = None,
                              cache: Optional[ResultCache] = None,
                              policy: Optional[ExecutionPolicy] = None,
                              timer: Optional[PhaseTimer] = None,
                              ) -> ResidentialReport:
    """Monte-Carlo over apartment rows; returns the §4.2 summary.

    Batched fast path: bit-identical to
    :func:`evaluate_residential_rows_scalar` for any seed, chunk size
    and worker count.  ``timer`` splits wall-clock into ``sample`` /
    ``evaluate`` / ``aggregate``.
    """
    if n_rows < 1:
        raise ValueError("need at least one row")
    check_positive("packet_bits", packet_bits)
    channel = channel or Channel()
    # Indoor shadowing creates the RSS inversions (own AP weaker than
    # the neighbour's) that the paper's §4.2 scenario relies on.
    propagation = propagation or LogDistancePathLoss(
        exponent=3.5, shadowing_sigma_db=6.0)
    sigma_db = getattr(propagation, "shadowing_sigma_db", 0.0)
    if sigma_db > 0.0 and not isinstance(propagation, LogDistancePathLoss):
        # Only the log-distance fading recipe is replayed in the chunk
        # function; unknown stochastic models keep the exact scalar
        # semantics by running the frozen reference.
        return evaluate_residential_rows_scalar(
            n_rows, n_homes, home_width_m, clients_per_home,
            packet_bits, channel, propagation, seed)
    token = seed_cache_token(seed)
    rng = make_rng(seed)

    with maybe_phase(timer, "sample"):
        distances, shadow_db = _sample_cross_home_distances(
            n_rows, n_homes, home_width_m, clients_per_home, rng,
            sigma_db)
    if distances.shape[0] == 0:
        raise RuntimeError("no cross-home pairs sampled")

    with maybe_phase(timer, "evaluate"):
        batch = PairDistanceBatch(
            distances_m=distances, shadow_db=shadow_db,
            tx_power_w=DEFAULT_TX_POWER_W, packet_bits=packet_bits,
            channel=channel, propagation=propagation)
        cache_key = pair_sweep_cache_key(
            "residential",
            {"n_rows": n_rows, "n_homes": n_homes,
             "home_width_m": home_width_m,
             "clients_per_home": clients_per_home,
             "packet_bits": packet_bits},
            channel, propagation, token)
        merged = run_indexed(
            "residential", pair_scenario_chunk, batch,
            distances.shape[0], code_version=1, cache_key=cache_key,
            n_workers=n_workers,
            chunk_size=chunk_size if chunk_size is not None else PAIR_CHUNK,
            cache=cache, policy=policy)

    with maybe_phase(timer, "aggregate"):
        n_pairs = int(merged["gains"].shape[0])
        report = ResidentialReport(
            n_pairs=n_pairs,
            case_fractions=sorted_case_fractions(merged["case_codes"],
                                                 n_pairs),
            sic_feasible_fraction=(
                int(np.count_nonzero(merged["sic_feasible"])) / n_pairs),
            gain_summary=gain_cdf_summary(merged["gains"]),
        )
    return report
