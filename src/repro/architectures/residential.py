"""Residential WLAN analysis (paper Section 4.2).

In an apartment row each client is WPA-locked to its own home's AP even
when a neighbour's AP is closer.  "Strangely, this restriction provides
some opportunities for SIC": a client whose own AP is *farther* than
the neighbour's can decode the neighbour's stronger downlink packet,
cancel it, and extract its own — letting both homes' downlinks run
concurrently.

This module samples cross-home downlink pairs from random apartment
rows, classifies each against the Fig. 5 taxonomy, and summarises how
often the lock creates a usable opportunity and what it is worth.  The
paper's own bottom line — opportunities exist but two-receiver gains
stay negligible under ideal rate adaptation — is exactly what the
numbers show.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.phy.pathloss import LogDistancePathLoss, PropagationModel
from repro.phy.shannon import Channel
from repro.sic.scenarios import PairCase, PairRss, evaluate_pair_scenario
from repro.topology.generators import WlanTopology, residential_row
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.util.cdf import gain_cdf_summary
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ResidentialReport:
    """Summary of cross-home downlink SIC opportunities."""

    n_pairs: int
    case_fractions: Dict[PairCase, float]
    sic_feasible_fraction: float
    gain_summary: Dict[str, float]

    @property
    def opportunity_fraction(self) -> float:
        """Pairs where someone needs SIC *and* the interferer decodes."""
        return self.sic_feasible_fraction


def residential_downlink_pairs(topology: WlanTopology,
                               propagation: PropagationModel,
                               rng,
                               tx_power_w: float = DEFAULT_TX_POWER_W,
                               ) -> Iterator[PairRss]:
    """Yield PairRss for concurrent downlinks of adjacent homes.

    Transmitter 1 is the left home's AP serving one of its own clients
    (receiver 1); transmitter 2 the right home's AP serving one of its
    clients — the residential lock in action.
    """
    needs_rng = getattr(propagation, "shadowing_sigma_db", 0.0) > 0.0

    def rss(tx_node, rx_node) -> float:
        distance = max(tx_node.distance_to(rx_node), 1.0)
        return float(propagation.received_power(
            tx_power_w, distance, rng if needs_rng else None))

    for left, right in zip(topology.aps, topology.aps[1:]):
        left_clients = topology.clients_of(left.name)
        right_clients = topology.clients_of(right.name)
        if not left_clients or not right_clients:
            continue
        r1 = left_clients[int(rng.integers(len(left_clients)))]
        r2 = right_clients[int(rng.integers(len(right_clients)))]
        yield PairRss(
            s11=rss(left, r1), s12=rss(right, r1),
            s21=rss(left, r2), s22=rss(right, r2))


def evaluate_residential_rows(n_rows: int = 400,
                              n_homes: int = 4,
                              home_width_m: float = 10.0,
                              clients_per_home: int = 2,
                              packet_bits: float = 12_000.0,
                              channel: Optional[Channel] = None,
                              propagation: Optional[PropagationModel] = None,
                              seed: SeedLike = None) -> ResidentialReport:
    """Monte-Carlo over apartment rows; returns the §4.2 summary."""
    if n_rows < 1:
        raise ValueError("need at least one row")
    check_positive("packet_bits", packet_bits)
    channel = channel or Channel()
    # Indoor shadowing creates the RSS inversions (own AP weaker than
    # the neighbour's) that the paper's §4.2 scenario relies on.
    propagation = propagation or LogDistancePathLoss(
        exponent=3.5, shadowing_sigma_db=6.0)
    rng = make_rng(seed)

    cases: Counter = Counter()
    feasible = 0
    gains: List[float] = []
    for _ in range(n_rows):
        topology = residential_row(n_homes, home_width_m,
                                   clients_per_home, rng)
        for rss in residential_downlink_pairs(topology, propagation, rng):
            scenario = evaluate_pair_scenario(channel, packet_bits, rss)
            cases[scenario.case] += 1
            feasible += scenario.sic_feasible
            gains.append(scenario.gain)

    if not gains:
        raise RuntimeError("no cross-home pairs sampled")
    n_pairs = len(gains)
    return ResidentialReport(
        n_pairs=n_pairs,
        case_fractions={case: count / n_pairs
                        for case, count in cases.items()},
        sic_feasible_fraction=feasible / n_pairs,
        gain_summary=gain_cdf_summary(gains),
    )
