"""Multihop mesh-chain analysis (paper Section 4.3).

Routing A -> C -> D -> E over a long-short-long chain is "a perfect
recipe for SIC at C": the A->C and D->E transmissions can overlap
because C hears D strongly (short C-D hop) and can cancel it.  The
flip side: the long hops force low bitrates, so SIC buys pipeline
*overlap*, not a faster bottleneck — and shortening the long hops to
raise their rate breaks the decode condition at C.

:func:`analyse_chain` computes both operating modes for one geometry;
:func:`sweep_chain_geometries` maps where the SIC region lives — the
grid sweep runs as one array pass over all (long, short) combinations,
bit-identical to the frozen per-combination reference
:func:`sweep_chain_geometries_scalar`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.phy.pathloss import LogDistancePathLoss, PropagationModel
from repro.phy.shannon import Channel, shannon_rate
from repro.topology.generators import MIN_LINK_DISTANCE_M, mesh_chain
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.util.timing import PhaseTimer, maybe_phase
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class ChainAnalysis:
    """One long-short-long chain's throughput with and without SIC."""

    long_hop_m: float
    short_hop_m: float
    sic_feasible: bool
    throughput_serial_bps: float
    throughput_sic_bps: float
    bottleneck_rate_bps: float

    @property
    def gain(self) -> float:
        if self.throughput_serial_bps <= 0.0:
            return 1.0
        return self.throughput_sic_bps / self.throughput_serial_bps


def analyse_chain(channel: Channel,
                  long_hop_m: float,
                  short_hop_m: float,
                  propagation: Optional[PropagationModel] = None,
                  packet_bits: float = 12_000.0,
                  tx_power_w: float = DEFAULT_TX_POWER_W) -> ChainAnalysis:
    """Throughput of one packet over A -> C -> D -> E, ± SIC at C.

    Without SIC the three hops run serially at clean rates.  With SIC,
    D->E (at D's clean rate to E) overlaps A->C: C must decode D's
    transmission at that rate despite A's interference, cancel it, and
    then recover A's packet at the post-cancellation clean rate.
    """
    check_positive("long_hop_m", long_hop_m)
    check_positive("short_hop_m", short_hop_m)
    check_positive("packet_bits", packet_bits)
    propagation = propagation or LogDistancePathLoss(exponent=3.5)
    chain = mesh_chain([long_hop_m, short_hop_m, long_hop_m])
    a, c, d, e = chain.nodes

    def rss(tx, rx) -> float:
        return float(propagation.received_power(
            tx_power_w, max(tx.distance_to(rx), 1.0)))

    b, n0 = channel.bandwidth_hz, channel.noise_w
    s_ac = rss(a, c)   # signal of interest at C
    s_dc = rss(d, c)   # D's transmission heard at C (short hop: strong)
    s_de = rss(d, e)
    s_cd = rss(c, d)

    r_ac = shannon_rate(b, s_ac, 0.0, n0)
    r_cd = shannon_rate(b, s_cd, 0.0, n0)
    r_de = shannon_rate(b, s_de, 0.0, n0)
    serial_time = sum(packet_bits / r for r in (r_ac, r_cd, r_de))

    # D transmits to E at r_de; C can decode that same stream only if
    # its SINR for D's signal (with A interfering) supports r_de, and
    # only a *stronger* interferer can be peeled first.
    r_dc_limit = shannon_rate(b, s_dc, s_ac, n0)
    sic_feasible = s_dc > s_ac and r_de <= r_dc_limit
    if sic_feasible:
        overlapped = max(packet_bits / r_ac, packet_bits / r_de)
        sic_time = overlapped + packet_bits / r_cd
    else:
        sic_time = serial_time

    return ChainAnalysis(
        long_hop_m=long_hop_m,
        short_hop_m=short_hop_m,
        sic_feasible=sic_feasible,
        throughput_serial_bps=packet_bits / serial_time,
        throughput_sic_bps=packet_bits / sic_time,
        bottleneck_rate_bps=min(r_ac, r_cd, r_de),
    )


def sweep_chain_geometries_scalar(channel: Channel,
                                  long_hops_m: Sequence[float] = (20.0, 30.0,
                                                                  40.0, 60.0),
                                  short_hops_m: Sequence[float] = (2.0, 5.0,
                                                                   10.0, 20.0),
                                  propagation: Optional[PropagationModel] = None,
                                  ) -> List[ChainAnalysis]:
    """Frozen scalar reference: analyse combinations one at a time.

    The historical per-geometry loop, behaviourally frozen (PR-1
    convention): golden reference for the batched
    :func:`sweep_chain_geometries`.
    """
    propagation = propagation or LogDistancePathLoss(exponent=3.5)
    return [
        analyse_chain(channel, long_m, short_m, propagation)
        for long_m in long_hops_m
        for short_m in short_hops_m
    ]


def sweep_chain_geometries(channel: Channel,
                           long_hops_m: Sequence[float] = (20.0, 30.0,
                                                           40.0, 60.0),
                           short_hops_m: Sequence[float] = (2.0, 5.0,
                                                            10.0, 20.0),
                           propagation: Optional[PropagationModel] = None,
                           *,
                           timer: Optional[PhaseTimer] = None,
                           ) -> List[ChainAnalysis]:
    """Analyse every (long, short) combination in one array pass.

    Bit-identical to :func:`sweep_chain_geometries_scalar` — link
    distances come from the same accumulated node positions, RSS from
    the per-element exact ``received_power_batch``, and the serial
    airtime keeps the scalar left-to-right summation order.
    """
    propagation = propagation or LogDistancePathLoss(exponent=3.5)
    if getattr(propagation, "shadowing_sigma_db", 0.0) > 0.0:
        # analyse_chain passes no rng, so shadowed models raise there;
        # run the frozen loop to reproduce the scalar error exactly.
        return sweep_chain_geometries_scalar(channel, long_hops_m,
                                             short_hops_m, propagation)
    combos: List[Tuple[float, float]] = [
        (long_m, short_m)
        for long_m in long_hops_m
        for short_m in short_hops_m
    ]
    if not combos:
        return []

    with maybe_phase(timer, "sample"):
        # Same validation sequence analyse_chain + mesh_chain apply,
        # in the scalar visiting order.
        for long_m, short_m in combos:
            check_positive("long_hop_m", long_m)
            check_positive("short_hop_m", short_m)
            for length in (long_m, short_m, long_m):
                check_in_range("hop length", length,
                               low=MIN_LINK_DISTANCE_M)
        long_v = np.array([c[0] for c in combos], dtype=float)
        short_v = np.array([c[1] for c in combos], dtype=float)
        # Node positions accumulate exactly as mesh_chain lays them
        # out; hop distances are position differences (x_c + short - x_c
        # need not round back to short, so diff like the scalar does).
        x_c = 0.0 + long_v
        x_d = x_c + short_v
        x_e = x_d + long_v
        d_ac = np.maximum(np.abs(0.0 - x_c), 1.0)
        d_dc = np.maximum(np.abs(x_d - x_c), 1.0)
        d_de = np.maximum(np.abs(x_d - x_e), 1.0)
        d_cd = np.maximum(np.abs(x_c - x_d), 1.0)

    with maybe_phase(timer, "evaluate"):
        b, n0 = channel.bandwidth_hz, channel.noise_w
        packet_bits = 12_000.0
        s_ac = propagation.received_power_batch(DEFAULT_TX_POWER_W, d_ac)
        s_dc = propagation.received_power_batch(DEFAULT_TX_POWER_W, d_dc)
        s_de = propagation.received_power_batch(DEFAULT_TX_POWER_W, d_de)
        s_cd = propagation.received_power_batch(DEFAULT_TX_POWER_W, d_cd)

        r_ac = shannon_rate(b, s_ac, 0.0, n0)
        r_cd = shannon_rate(b, s_cd, 0.0, n0)
        r_de = shannon_rate(b, s_de, 0.0, n0)
        # sum(t for t in (t_ac, t_cd, t_de)) associates left to right.
        serial_time = (packet_bits / r_ac + packet_bits / r_cd) \
            + packet_bits / r_de

        r_dc_limit = shannon_rate(b, s_dc, s_ac, n0)
        sic_feasible = (s_dc > s_ac) & (r_de <= r_dc_limit)
        overlapped = np.maximum(packet_bits / r_ac, packet_bits / r_de)
        sic_time = np.where(sic_feasible,
                            overlapped + packet_bits / r_cd, serial_time)

    with maybe_phase(timer, "aggregate"):
        serial_bps = (packet_bits / serial_time).tolist()
        sic_bps = (packet_bits / sic_time).tolist()
        bottleneck = np.minimum(np.minimum(r_ac, r_cd), r_de).tolist()
        feasible = sic_feasible.tolist()
        results = [
            ChainAnalysis(
                long_hop_m=long_m,
                short_hop_m=short_m,
                sic_feasible=bool(feasible[k]),
                throughput_serial_bps=float(serial_bps[k]),
                throughput_sic_bps=float(sic_bps[k]),
                bottleneck_rate_bps=float(bottleneck[k]),
            )
            for k, (long_m, short_m) in enumerate(combos)
        ]
    return results


def feasibility_frontier(results: Sequence[ChainAnalysis]
                         ) -> Dict[float, Optional[float]]:
    """Per long-hop length, the largest short hop that still admits SIC.

    Captures the paper's "if long-hops are made shorter ... C may not
    be able to decode" observation as a crossover curve.
    """
    frontier: Dict[float, Optional[float]] = {}
    for analysis in results:
        current = frontier.get(analysis.long_hop_m)
        if analysis.sic_feasible and (current is None
                                      or analysis.short_hop_m > current):
            frontier[analysis.long_hop_m] = analysis.short_hop_m
        else:
            frontier.setdefault(analysis.long_hop_m, current)
    return frontier
