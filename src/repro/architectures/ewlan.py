"""Enterprise WLAN analysis (paper Section 4.1).

Two of the four EWLAN traffic cases reduce directly to earlier
analysis: *upload, two clients to one AP* is Section 3.1
(:func:`repro.sic.airtime.sic_gain_same_receiver`), and *download, two
APs to one client* is Eq. 10
(:func:`repro.sic.airtime.download_gain_two_aps_one_client`).

What remains architectural is the *cross-AP* pair of cases: two
clients to two APs (upload) or two APs to two clients (download).  The
paper's argument is that enterprise association freedom — "transmission
to the closest AP is obviously a better alternative" — pushes these
into the capture case (each receiver's own signal strongest), where SIC
is simply not needed.  This module quantifies that argument on random
EWLAN grids.

Fast path (``docs/architecture_performance.md``): the driver replays
the scalar sampling stream draw for draw (client placements, pair
index draws, shadowing normals), then the pre-sampled pairs fan out
across the supervised indexed runner — retries, checkpoint/resume and
the result cache included — and the Fig. 5 classification runs as one
array pass per chunk.  :func:`evaluate_ewlan_cross_pairs_scalar`
freezes the historical per-pair loop as the golden reference.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.architectures.pairsweep import (
    PAIR_CHUNK,
    PairDistanceBatch,
    pair_scenario_chunk,
    pair_sweep_cache_key,
    sequential_sum,
    sorted_case_fractions,
)
from repro.experiments.runner import (
    ExecutionPolicy,
    run_indexed,
    seed_cache_token,
)
from repro.phy.pathloss import LogDistancePathLoss, PropagationModel
from repro.phy.shannon import Channel
from repro.sic.scenarios import (
    CASE_ORDER,
    PairCase,
    PairRss,
    evaluate_pair_scenario,
)
from repro.topology.generators import WlanTopology, ewlan_grid
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.util.cache import ResultCache
from repro.util.rng import SeedLike, make_rng
from repro.util.timing import PhaseTimer, maybe_phase
from repro.util.validation import check_positive


@dataclass(frozen=True)
class EwlanCrossPairReport:
    """Outcome of sampling cross-AP uplink pairs in EWLAN grids."""

    n_pairs: int
    case_fractions: Dict[PairCase, float]
    sic_feasible_fraction: float
    mean_gain: float

    @property
    def capture_fraction(self) -> float:
        """Fraction of pairs where SIC is not needed (Fig. 5 case a)."""
        return self.case_fractions.get(PairCase.BOTH_CAPTURE, 0.0)

    def rows(self) -> List[Tuple[str, float]]:
        """Report rows in deterministic Fig. 5 case order."""
        rows: List[Tuple[str, float]] = [
            (f"case_{case.value}", self.case_fractions[case])
            for case in CASE_ORDER if case in self.case_fractions]
        rows.append(("sic_feasible", self.sic_feasible_fraction))
        rows.append(("mean_gain", self.mean_gain))
        return rows


def _uplink_pair_rss(topology: WlanTopology, ap_a, ap_b, client_a,
                     client_b, propagation: PropagationModel,
                     tx_power_w: float,
                     rng: Optional[object]) -> PairRss:
    """S_j^i values for two concurrent uplinks to different APs.

    Receiver 1 is ``ap_a`` (serving ``client_a``); receiver 2 is
    ``ap_b`` (serving ``client_b``).
    """
    def rss(tx, rx) -> float:
        distance = max(tx.distance_to(rx), 1.0)
        return float(propagation.received_power(tx_power_w, distance, rng))

    return PairRss(
        s11=rss(client_a, ap_a),
        s12=rss(client_b, ap_a),
        s21=rss(client_a, ap_b),
        s22=rss(client_b, ap_b),
    )


def evaluate_ewlan_cross_pairs_scalar(
        n_grids: int = 100,
        ap_rows: int = 2,
        ap_cols: int = 2,
        ap_spacing_m: float = 40.0,
        clients_per_ap: int = 4,
        packet_bits: float = 12_000.0,
        channel: Optional[Channel] = None,
        propagation: Optional[PropagationModel] = None,
        seed: SeedLike = None,
        ) -> EwlanCrossPairReport:
    """Frozen scalar reference: sample and classify pair by pair.

    The historical per-pair loop, behaviourally frozen (PR-1
    convention): golden reference and benchmark baseline for the
    batched :func:`evaluate_ewlan_cross_pairs`.
    """
    if n_grids < 1:
        raise ValueError("need at least one grid")
    check_positive("packet_bits", packet_bits)
    channel = channel or Channel()
    propagation = propagation or LogDistancePathLoss(exponent=3.5)
    rng = make_rng(seed)
    needs_rng = getattr(propagation, "shadowing_sigma_db", 0.0) > 0.0

    cases: Counter = Counter()
    feasible = 0
    gain_total = 0.0
    pairs = 0
    for _ in range(n_grids):
        topology = ewlan_grid(ap_rows, ap_cols, ap_spacing_m,
                              clients_per_ap, rng)
        aps = list(topology.aps)
        for ap_a, ap_b in zip(aps, aps[1:]):
            clients_a = topology.clients_of(ap_a.name)
            clients_b = topology.clients_of(ap_b.name)
            if not clients_a or not clients_b:
                continue
            client_a = clients_a[int(rng.integers(len(clients_a)))]
            client_b = clients_b[int(rng.integers(len(clients_b)))]
            rss = _uplink_pair_rss(topology, ap_a, ap_b, client_a,
                                   client_b, propagation,
                                   DEFAULT_TX_POWER_W,
                                   rng if needs_rng else None)
            scenario = evaluate_pair_scenario(channel, packet_bits, rss)
            cases[scenario.case] += 1
            feasible += scenario.sic_feasible
            gain_total += scenario.gain
            pairs += 1

    if pairs == 0:
        raise RuntimeError("no cross-AP pairs sampled; grid too sparse")
    return EwlanCrossPairReport(
        n_pairs=pairs,
        case_fractions={case: cases[case] / pairs
                        for case in CASE_ORDER if case in cases},
        sic_feasible_fraction=feasible / pairs,
        mean_gain=gain_total / pairs,
    )


def _sample_cross_pair_distances(
        n_grids: int, ap_rows: int, ap_cols: int, ap_spacing_m: float,
        clients_per_ap: int, rng, shadowing_sigma_db: float,
        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Replay the scalar sampling stream; return link geometry arrays.

    Consumes ``rng`` exactly as ``ewlan_grid`` plus the scalar pair
    loop do — per grid two block uniform draws for the client
    placements, then per adjacent-AP pair two index draws and (under
    shadowing) one block of four normals in ``(s11, s12, s21, s22)``
    order.  Association distances are computed with ``math.hypot`` in
    the scalar argument order so the nearest-AP tie-break and the
    recorded link distances match the scalar topology bit for bit.
    """
    if ap_rows < 1 or ap_cols < 1:
        raise ValueError("need at least one AP")
    if clients_per_ap < 0:
        raise ValueError("clients_per_ap must be non-negative")
    check_positive("ap_spacing_m", ap_spacing_m)
    ap_xy = [(c * ap_spacing_m, r * ap_spacing_m)
             for r in range(ap_rows) for c in range(ap_cols)]
    n_aps = len(ap_xy)
    width = max(ap_cols - 1, 1) * ap_spacing_m
    height = max(ap_rows - 1, 1) * ap_spacing_m
    n_clients = clients_per_ap * n_aps

    distance_rows: List[Tuple[float, float, float, float]] = []
    shadow_rows: List[np.ndarray] = []
    for _ in range(n_grids):
        # The same two block draws random_points_in_rect makes; the
        # stream is defined per grid (pair draws interleave below).
        xs = rng.uniform(0.0, width, size=n_clients)
        ys = rng.uniform(0.0, height, size=n_clients)
        members: List[List[int]] = [[] for _ in range(n_aps)]
        dist: List[List[float]] = []
        for x, y in zip(xs.tolist(), ys.tolist()):
            row = [math.hypot(ax - x, ay - y) for ax, ay in ap_xy]
            dist.append(row)
            members[min(range(n_aps), key=row.__getitem__)].append(len(dist) - 1)
        for a in range(n_aps - 1):
            members_a, members_b = members[a], members[a + 1]
            if not members_a or not members_b:
                continue
            ca = members_a[int(rng.integers(len(members_a)))]
            cb = members_b[int(rng.integers(len(members_b)))]
            distance_rows.append((max(dist[ca][a], 1.0),
                                  max(dist[cb][a], 1.0),
                                  max(dist[ca][a + 1], 1.0),
                                  max(dist[cb][a + 1], 1.0)))
            if shadowing_sigma_db > 0.0:
                shadow_rows.append(
                    rng.normal(0.0, shadowing_sigma_db, size=4))

    distances = np.array(distance_rows, dtype=float).reshape(-1, 4)
    shadow = np.array(shadow_rows, dtype=float).reshape(-1, 4) \
        if shadowing_sigma_db > 0.0 else None
    return distances, shadow


def evaluate_ewlan_cross_pairs(n_grids: int = 100,
                               ap_rows: int = 2,
                               ap_cols: int = 2,
                               ap_spacing_m: float = 40.0,
                               clients_per_ap: int = 4,
                               packet_bits: float = 12_000.0,
                               channel: Optional[Channel] = None,
                               propagation: Optional[PropagationModel] = None,
                               seed: SeedLike = None,
                               *,
                               n_workers: int = 1,
                               chunk_size: Optional[int] = None,
                               cache: Optional[ResultCache] = None,
                               policy: Optional[ExecutionPolicy] = None,
                               timer: Optional[PhaseTimer] = None,
                               ) -> EwlanCrossPairReport:
    """Sample concurrent cross-AP uplink pairs and classify them.

    In each random grid, one client of AP_a transmits while one client
    of AP_b does; nearest-AP association (built into
    :func:`repro.topology.generators.ewlan_grid`) means each client's
    own AP usually hears it loudest — the paper's case-a prediction.

    Batched fast path: bit-identical to
    :func:`evaluate_ewlan_cross_pairs_scalar` for any seed, chunk size
    and worker count.  ``timer`` splits wall-clock into ``sample`` /
    ``evaluate`` / ``aggregate``.
    """
    if n_grids < 1:
        raise ValueError("need at least one grid")
    check_positive("packet_bits", packet_bits)
    channel = channel or Channel()
    propagation = propagation or LogDistancePathLoss(exponent=3.5)
    sigma_db = getattr(propagation, "shadowing_sigma_db", 0.0)
    if sigma_db > 0.0 and not isinstance(propagation, LogDistancePathLoss):
        # Only the log-distance model's fading recipe is replayed in
        # the chunk function; unknown stochastic models keep the exact
        # scalar semantics by running the frozen reference.
        return evaluate_ewlan_cross_pairs_scalar(
            n_grids, ap_rows, ap_cols, ap_spacing_m, clients_per_ap,
            packet_bits, channel, propagation, seed)
    token = seed_cache_token(seed)
    rng = make_rng(seed)

    with maybe_phase(timer, "sample"):
        distances, shadow_db = _sample_cross_pair_distances(
            n_grids, ap_rows, ap_cols, ap_spacing_m, clients_per_ap,
            rng, sigma_db)
    if distances.shape[0] == 0:
        raise RuntimeError("no cross-AP pairs sampled; grid too sparse")

    with maybe_phase(timer, "evaluate"):
        batch = PairDistanceBatch(
            distances_m=distances, shadow_db=shadow_db,
            tx_power_w=DEFAULT_TX_POWER_W, packet_bits=packet_bits,
            channel=channel, propagation=propagation)
        cache_key = pair_sweep_cache_key(
            "ewlan",
            {"n_grids": n_grids, "ap_rows": ap_rows, "ap_cols": ap_cols,
             "ap_spacing_m": ap_spacing_m,
             "clients_per_ap": clients_per_ap,
             "packet_bits": packet_bits},
            channel, propagation, token)
        merged = run_indexed(
            "ewlan", pair_scenario_chunk, batch, distances.shape[0],
            code_version=1, cache_key=cache_key, n_workers=n_workers,
            chunk_size=chunk_size if chunk_size is not None else PAIR_CHUNK,
            cache=cache, policy=policy)

    with maybe_phase(timer, "aggregate"):
        n_pairs = int(merged["gains"].shape[0])
        report = EwlanCrossPairReport(
            n_pairs=n_pairs,
            case_fractions=sorted_case_fractions(merged["case_codes"],
                                                 n_pairs),
            sic_feasible_fraction=(
                int(np.count_nonzero(merged["sic_feasible"])) / n_pairs),
            mean_gain=sequential_sum(merged["gains"]) / n_pairs,
        )
    return report


def nearest_ap_capture_fraction(report: EwlanCrossPairReport) -> float:
    """Alias for the paper's headline EWLAN quantity."""
    return report.capture_fraction
