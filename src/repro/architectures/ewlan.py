"""Enterprise WLAN analysis (paper Section 4.1).

Two of the four EWLAN traffic cases reduce directly to earlier
analysis: *upload, two clients to one AP* is Section 3.1
(:func:`repro.sic.airtime.sic_gain_same_receiver`), and *download, two
APs to one client* is Eq. 10
(:func:`repro.sic.airtime.download_gain_two_aps_one_client`).

What remains architectural is the *cross-AP* pair of cases: two
clients to two APs (upload) or two APs to two clients (download).  The
paper's argument is that enterprise association freedom — "transmission
to the closest AP is obviously a better alternative" — pushes these
into the capture case (each receiver's own signal strongest), where SIC
is simply not needed.  This module quantifies that argument on random
EWLAN grids.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

from repro.phy.pathloss import LogDistancePathLoss, PropagationModel
from repro.phy.shannon import Channel
from repro.sic.scenarios import PairCase, PairRss, evaluate_pair_scenario
from repro.topology.generators import WlanTopology, ewlan_grid
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class EwlanCrossPairReport:
    """Outcome of sampling cross-AP uplink pairs in EWLAN grids."""

    n_pairs: int
    case_fractions: Dict[PairCase, float]
    sic_feasible_fraction: float
    mean_gain: float

    @property
    def capture_fraction(self) -> float:
        """Fraction of pairs where SIC is not needed (Fig. 5 case a)."""
        return self.case_fractions.get(PairCase.BOTH_CAPTURE, 0.0)


def _uplink_pair_rss(topology: WlanTopology, ap_a, ap_b, client_a,
                     client_b, propagation: PropagationModel,
                     tx_power_w: float,
                     rng: Optional[object]) -> PairRss:
    """S_j^i values for two concurrent uplinks to different APs.

    Receiver 1 is ``ap_a`` (serving ``client_a``); receiver 2 is
    ``ap_b`` (serving ``client_b``).
    """
    def rss(tx, rx) -> float:
        distance = max(tx.distance_to(rx), 1.0)
        return float(propagation.received_power(tx_power_w, distance, rng))

    return PairRss(
        s11=rss(client_a, ap_a),
        s12=rss(client_b, ap_a),
        s21=rss(client_a, ap_b),
        s22=rss(client_b, ap_b),
    )


def evaluate_ewlan_cross_pairs(n_grids: int = 100,
                               ap_rows: int = 2,
                               ap_cols: int = 2,
                               ap_spacing_m: float = 40.0,
                               clients_per_ap: int = 4,
                               packet_bits: float = 12_000.0,
                               channel: Optional[Channel] = None,
                               propagation: Optional[PropagationModel] = None,
                               seed: SeedLike = None,
                               ) -> EwlanCrossPairReport:
    """Sample concurrent cross-AP uplink pairs and classify them.

    In each random grid, one client of AP_a transmits while one client
    of AP_b does; nearest-AP association (built into
    :func:`repro.topology.generators.ewlan_grid`) means each client's
    own AP usually hears it loudest — the paper's case-a prediction.
    """
    if n_grids < 1:
        raise ValueError("need at least one grid")
    check_positive("packet_bits", packet_bits)
    channel = channel or Channel()
    propagation = propagation or LogDistancePathLoss(exponent=3.5)
    rng = make_rng(seed)
    needs_rng = getattr(propagation, "shadowing_sigma_db", 0.0) > 0.0

    cases: Counter = Counter()
    feasible = 0
    gain_total = 0.0
    pairs = 0
    for _ in range(n_grids):
        topology = ewlan_grid(ap_rows, ap_cols, ap_spacing_m,
                              clients_per_ap, rng)
        aps = list(topology.aps)
        for ap_a, ap_b in zip(aps, aps[1:]):
            clients_a = topology.clients_of(ap_a.name)
            clients_b = topology.clients_of(ap_b.name)
            if not clients_a or not clients_b:
                continue
            client_a = clients_a[int(rng.integers(len(clients_a)))]
            client_b = clients_b[int(rng.integers(len(clients_b)))]
            rss = _uplink_pair_rss(topology, ap_a, ap_b, client_a,
                                   client_b, propagation,
                                   DEFAULT_TX_POWER_W,
                                   rng if needs_rng else None)
            scenario = evaluate_pair_scenario(channel, packet_bits, rss)
            cases[scenario.case] += 1
            feasible += scenario.sic_feasible
            gain_total += scenario.gain
            pairs += 1

    if pairs == 0:
        raise RuntimeError("no cross-AP pairs sampled; grid too sparse")
    return EwlanCrossPairReport(
        n_pairs=pairs,
        case_fractions={case: count / pairs for case, count in cases.items()},
        sic_feasible_fraction=feasible / pairs,
        mean_gain=gain_total / pairs,
    )


def nearest_ap_capture_fraction(report: EwlanCrossPairReport) -> float:
    """Alias for the paper's headline EWLAN quantity."""
    return report.capture_fraction
