"""Fig. 13 — trace-based upload evaluation of SIC-aware link pairing.

The paper runs its pairing algorithm over topology snapshots parsed
from two weeks of Duke-building RSSI traces and reports the CDF of the
achievable gain, with and without power control / multirate
packetization.  Claims to reproduce: real-life association sets do
offer pairing gains, the gains grow when power control or multirate is
added, and "the trends are similar to the results shown in Fig. 11a".

We run the identical pipeline over the synthetic building trace (see
DESIGN.md for the substitution argument).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel
from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.techniques.pairing import TechniqueSet
from repro.traces.records import UploadTrace
from repro.traces.synthetic import UploadTraceConfig, UploadTraceGenerator
from repro.util.cdf import gain_cdf_summary
from repro.util.rng import SeedLike

DEFAULT_BANDWIDTH_HZ = 20e6

#: The three curves of Fig. 13.
TECHNIQUE_SETS = {
    "pairing": TechniqueSet.NONE,
    "pairing+power_control": TechniqueSet.POWER_CONTROL,
    "pairing+multirate": TechniqueSet.MULTIRATE,
}


def snapshot_gain(scheduler: SicScheduler, snapshot) -> float:
    """Upload gain of one association snapshot (serial / scheduled)."""
    clients = [UploadClient(obs.client, obs.rss_w)
               for obs in snapshot.clients]
    schedule = scheduler.schedule(clients)
    return schedule.gain


def compute(trace: Optional[UploadTrace] = None,
            trace_config: Optional[UploadTraceConfig] = None,
            seed: SeedLike = 2010,
            packet_bits: float = 12_000.0,
            max_snapshots: Optional[int] = None,
            ) -> Dict[str, Dict[str, object]]:
    """Per-technique gain distributions over the trace's busy snapshots.

    Pass a ``trace`` (e.g. read from JSONL) to evaluate existing data;
    otherwise a synthetic trace is generated from ``trace_config``.
    """
    if trace is None:
        config = trace_config or UploadTraceConfig()
        trace = UploadTraceGenerator(config).generate(seed)
    snapshots = trace.busy_snapshots(min_clients=2)
    if max_snapshots is not None:
        snapshots = snapshots[:max_snapshots]
    if not snapshots:
        raise ValueError("trace has no snapshots with >= 2 clients")

    channel = Channel(bandwidth_hz=DEFAULT_BANDWIDTH_HZ,
                      noise_w=thermal_noise_watts(DEFAULT_BANDWIDTH_HZ))
    results: Dict[str, Dict[str, object]] = {}
    for label, techniques in TECHNIQUE_SETS.items():
        scheduler = SicScheduler(channel=channel, packet_bits=packet_bits,
                                 techniques=techniques)
        gains = np.array([snapshot_gain(scheduler, snap)
                          for snap in snapshots])
        results[label] = {
            "gains": gains,
            "summary": gain_cdf_summary(gains),
        }
    results["meta"] = {
        "n_snapshots": len(snapshots),
        "building": trace.building,
        "trace_duration_s": trace.duration_s,
    }
    return results
