"""Fig. 13 — trace-based upload evaluation of SIC-aware link pairing.

The paper runs its pairing algorithm over topology snapshots parsed
from two weeks of Duke-building RSSI traces and reports the CDF of the
achievable gain, with and without power control / multirate
packetization.  Claims to reproduce: real-life association sets do
offer pairing gains, the gains grow when power control or multirate is
added, and "the trends are similar to the results shown in Fig. 11a".

We run the identical pipeline over the synthetic building trace (see
DESIGN.md for the substitution argument).

Fast path (``docs/trace_performance.md``): the trace comes from the
vectorised generator, the busy snapshots fan out across worker
processes through the supervised indexed runner (retry/backoff,
checkpoint/resume and the ``REPRO_CACHE_DIR`` result cache included),
and each snapshot's backlog is costed once and shared by all three
technique sets.  :func:`compute_scalar` freezes the historical serial
pipeline as the golden reference and the benchmark baseline.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.runner import (
    ExecutionPolicy,
    run_indexed,
    seed_cache_token,
)
from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel
from repro.scheduling.scheduler import BacklogCosts, SicScheduler, UploadClient
from repro.techniques.pairing import (
    TechniqueSet,
    pair_airtime_batch,
    solo_airtime_batch,
)
from repro.traces.records import UploadTrace
from repro.traces.synthetic import UploadTraceConfig, UploadTraceGenerator
from repro.util.cache import ResultCache
from repro.util.cdf import gain_cdf_summary
from repro.util.rng import SeedLike
from repro.util.timing import PhaseTimer, maybe_phase

DEFAULT_BANDWIDTH_HZ = 20e6

#: The three curves of Fig. 13.
TECHNIQUE_SETS = {
    "pairing": TechniqueSet.NONE,
    "pairing+power_control": TechniqueSet.POWER_CONTROL,
    "pairing+multirate": TechniqueSet.MULTIRATE,
}

#: Snapshots per chunk — fixed (not derived from ``n_workers``) so the
#: chunk layout, and with it every cache and checkpoint key, is
#: identical for serial and parallel runs of the same evaluation.
SNAPSHOT_CHUNK = 64


def snapshot_clients(snapshot) -> List[UploadClient]:
    """The backlog of one association snapshot, built once per snapshot
    and shared across technique sets (it used to be rebuilt per
    scheduler)."""
    return [UploadClient(obs.client, obs.rss_w)
            for obs in snapshot.clients]


def snapshot_gain(scheduler: SicScheduler, snapshot) -> float:
    """Upload gain of one association snapshot (serial / scheduled)."""
    schedule = scheduler.schedule(snapshot_clients(snapshot))
    return schedule.gain


def _technique_schedulers(bandwidth_hz: float,
                          packet_bits: float) -> Dict[str, SicScheduler]:
    channel = Channel(bandwidth_hz=bandwidth_hz,
                      noise_w=thermal_noise_watts(bandwidth_hz))
    return {label: SicScheduler(channel=channel, packet_bits=packet_bits,
                                techniques=techniques)
            for label, techniques in TECHNIQUE_SETS.items()}


@dataclass(frozen=True)
class _SnapshotBatch:
    """Picklable chunk config: the busy snapshots' backlogs."""

    #: Per snapshot: ``((client_name, rss_w), ...)`` in snapshot order.
    backlogs: Tuple[Tuple[Tuple[str, float], ...], ...]
    bandwidth_hz: float
    packet_bits: float


def _fig13_chunk(batch: _SnapshotBatch, start: int,
                 n: int) -> Dict[str, np.ndarray]:
    """Evaluate snapshots ``[start, start + n)`` for all three curves.

    Work sharing, per the fast-path design: solo airtimes and the
    triangular pair-airtime arrays of *all* snapshots in the chunk are
    computed in one ``solo_airtime_batch`` call plus one
    ``pair_airtime_batch`` call per technique set (both pinned
    element-identical to their scalar counterparts, and elementwise, so
    slicing the concatenation equals the per-snapshot calls); each
    snapshot's backlog and :class:`BacklogCosts` are then built once
    and shared by the three schedulers through
    :meth:`~repro.scheduling.scheduler.SicScheduler.schedule_gain`.
    """
    schedulers = _technique_schedulers(batch.bandwidth_hz,
                                       batch.packet_bits)
    shared = next(iter(schedulers.values()))
    channel, packet_bits = shared.channel, shared.packet_bits
    backlogs = batch.backlogs[start:start + n]
    rss_arrays = [np.fromiter((rss for _, rss in backlog), dtype=float,
                              count=len(backlog)) for backlog in backlogs]

    # One batched costing over the whole chunk, sliced per snapshot.
    pair_keys_of: Dict[int, List[Tuple[int, int]]] = {}
    triu_of: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    a_parts: List[np.ndarray] = []
    b_parts: List[np.ndarray] = []
    for rss in rss_arrays:
        m = len(rss)
        if m not in triu_of:
            ii, jj = np.triu_indices(m, k=1)
            triu_of[m] = (ii, jj)
            pair_keys_of[m] = list(zip(ii.tolist(), jj.tolist()))
        ii, jj = triu_of[m]
        a_parts.append(rss[ii])
        b_parts.append(rss[jj])
    all_a = np.concatenate(a_parts) if a_parts else np.empty(0)
    all_b = np.concatenate(b_parts) if b_parts else np.empty(0)
    all_rss = np.concatenate(rss_arrays) if rss_arrays else np.empty(0)
    all_solos = solo_airtime_batch(channel, packet_bits, all_rss)
    all_airtimes = {
        label: pair_airtime_batch(channel, packet_bits, all_a, all_b,
                                  techniques=scheduler.techniques,
                                  sic_enabled=scheduler.sic_enabled)
        for label, scheduler in schedulers.items()
    }

    out = {label: np.empty(n) for label in schedulers}
    client_at = pair_at = 0
    for k, backlog in enumerate(backlogs):
        m = len(backlog)
        n_pairs = len(pair_keys_of[m])
        clients = [UploadClient(name, rss) for name, rss in backlog]
        solos = all_solos[client_at:client_at + m]
        precomputed = BacklogCosts(
            names=tuple(name for name, _ in backlog),
            rss_w=rss_arrays[k],
            solo_airtime_s=solos,
            serial_time_s=float(sum(solos.tolist())))
        dummy = m if m % 2 == 1 else None
        for label, scheduler in schedulers.items():
            # Same (costs, dummy) layout as ``build_cost_graph``.
            airtimes = all_airtimes[label][pair_at:pair_at + n_pairs]
            costs = dict(zip(pair_keys_of[m], airtimes.tolist()))
            if dummy is not None:
                for i, t in enumerate(solos.tolist()):
                    costs[(i, dummy)] = t
            out[label][k] = scheduler.schedule_gain(
                clients, precomputed=precomputed,
                cost_graph=(costs, dummy))
        client_at += m
        pair_at += n_pairs
    return out


def compute(trace: Optional[UploadTrace] = None,
            trace_config: Optional[UploadTraceConfig] = None,
            seed: SeedLike = 2010,
            packet_bits: float = 12_000.0,
            max_snapshots: Optional[int] = None,
            *,
            n_workers: int = 1,
            chunk_size: Optional[int] = None,
            cache: Optional[ResultCache] = None,
            policy: Optional[ExecutionPolicy] = None,
            timer: Optional[PhaseTimer] = None,
            ) -> Dict[str, Dict[str, object]]:
    """Per-technique gain distributions over the trace's busy snapshots.

    Pass a ``trace`` (e.g. read from JSONL) to evaluate existing data;
    otherwise a synthetic trace is generated from ``trace_config``.

    Snapshot scheduling runs through
    :func:`~repro.experiments.runner.run_indexed`: ``n_workers``
    processes, ``policy`` fault handling, checkpoint/resume, and the
    result cache (generated traces with cacheable seeds only) — with
    results bit-identical to the serial path for any worker count.
    ``timer`` splits wall-clock into ``trace_gen`` / ``scheduling`` /
    ``assembly``.
    """
    generated = trace is None
    config = None
    if generated:
        config = trace_config or UploadTraceConfig()
        with maybe_phase(timer, "trace_gen"):
            trace = UploadTraceGenerator(config).generate(seed)
    snapshots = trace.busy_snapshots(min_clients=2)
    if max_snapshots is not None:
        snapshots = snapshots[:max_snapshots]
    if not snapshots:
        raise ValueError("trace has no snapshots with >= 2 clients")

    with maybe_phase(timer, "scheduling"):
        batch = _SnapshotBatch(
            backlogs=tuple(
                tuple((obs.client, obs.rss_w) for obs in snap.clients)
                for snap in snapshots),
            bandwidth_hz=DEFAULT_BANDWIDTH_HZ,
            packet_bits=packet_bits)
        cache_key = None
        if generated:
            token = seed_cache_token(seed)
            if token is not None:
                cache_key = {"trace_config": asdict(config),
                             "seed": token,
                             "packet_bits": packet_bits,
                             "max_snapshots": max_snapshots}
        merged = run_indexed(
            "fig13", _fig13_chunk, batch, len(snapshots),
            code_version=1, cache_key=cache_key, n_workers=n_workers,
            chunk_size=chunk_size if chunk_size is not None
            else SNAPSHOT_CHUNK,
            cache=cache, policy=policy)

    with maybe_phase(timer, "assembly"):
        results: Dict[str, Dict[str, object]] = {
            label: {"gains": merged[label],
                    "summary": gain_cdf_summary(merged[label])}
            for label in TECHNIQUE_SETS
        }
        results["meta"] = {
            "n_snapshots": len(snapshots),
            "building": trace.building,
            "trace_duration_s": trace.duration_s,
        }
    return results


def compute_scalar(trace: Optional[UploadTrace] = None,
                   trace_config: Optional[UploadTraceConfig] = None,
                   seed: SeedLike = 2010,
                   packet_bits: float = 12_000.0,
                   max_snapshots: Optional[int] = None,
                   ) -> Dict[str, Dict[str, object]]:
    """The historical serial pipeline, behaviourally frozen (PR-1
    convention): scalar trace generation, then one pass per technique
    set rebuilding every snapshot's backlog from scratch.  Golden
    reference and benchmark baseline for :func:`compute`."""
    if trace is None:
        config = trace_config or UploadTraceConfig()
        trace = UploadTraceGenerator(config).generate_scalar(seed)
    snapshots = trace.busy_snapshots(min_clients=2)
    if max_snapshots is not None:
        snapshots = snapshots[:max_snapshots]
    if not snapshots:
        raise ValueError("trace has no snapshots with >= 2 clients")

    channel = Channel(bandwidth_hz=DEFAULT_BANDWIDTH_HZ,
                      noise_w=thermal_noise_watts(DEFAULT_BANDWIDTH_HZ))
    results: Dict[str, Dict[str, object]] = {}
    for label, techniques in TECHNIQUE_SETS.items():
        scheduler = SicScheduler(channel=channel, packet_bits=packet_bits,
                                 techniques=techniques)
        gains = np.array([snapshot_gain(scheduler, snap)
                          for snap in snapshots])
        results[label] = {
            "gains": gains,
            "summary": gain_cdf_summary(gains),
        }
    results["meta"] = {
        "n_snapshots": len(snapshots),
        "building": trace.building,
        "trace_duration_s": trace.duration_s,
    }
    return results
