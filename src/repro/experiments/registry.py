"""Experiment registry: one entry per paper figure, with printers.

Maps figure identifiers to (description, compute function, printer) so
the CLI and the benchmark harness share a single source of truth about
what regenerates each figure.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.experiments import (
    fig2,
    fig3,
    fig4,
    fig6,
    fig7,
    fig8,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
)
from repro.util.cdf import ascii_cdf
from repro.util.containers import GridResult, SweepResult, ascii_heatmap


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper figure."""

    figure: str
    description: str
    compute: Callable[..., object]
    render: Callable[[object], List[str]]


def _render_sweep(result: SweepResult) -> List[str]:
    return [result.name] + result.row_strings()


def _render_grid(result: GridResult) -> List[str]:
    return result.summary_strings() + ["", ascii_heatmap(result)]


def _render_gain_map(result: Dict[str, Dict[str, object]],
                     plot: bool = True) -> List[str]:
    lines = []
    for label, entry in result.items():
        if label == "meta":
            lines.append(f"meta: {entry}")
            continue
        summary = entry["summary"]
        lines.append(
            f"{label:>28}: no-gain {summary['frac_no_gain']:.1%}, "
            f">10% {summary['frac_gain_over_10pct']:.1%}, "
            f">20% {summary['frac_gain_over_20pct']:.1%}, "
            f"median {summary['median']:.3f}, max {summary['max']:.3f}")
    if plot:
        for label, entry in result.items():
            if label == "meta" or "gains" not in entry:
                continue
            lines.append("")
            lines.append(ascii_cdf(entry["gains"], x_min=1.0, x_max=2.0,
                                   label=f"CDF of gain: {label}"))
    return lines


def _render_fig11(result: Dict[str, Dict[str, object]]) -> List[str]:
    lines = []
    for panel, techniques in result.items():
        lines.append(f"[{panel}]")
        lines.extend("  " + row
                     for row in _render_gain_map(techniques, plot=False))
    return lines


def _render_fig10(result) -> List[str]:
    return result.rows()


def _render_fig12(result) -> List[str]:
    lines = []
    for comparison in result["comparisons"]:
        parts = ", ".join(f"{name} {gain:.3f}x"
                          for name, gain in comparison.mean_gains.items())
        lines.append(f"n={comparison.n_clients:>3}: mean gains {parts}")
    lines.append("runtime (one instance): " + ", ".join(
        f"n={n}: {entry['total_s'] * 1e3:.1f}ms"
        for n, entry in result["runtime"].items()))
    for n, entry in result["runtime"].items():
        phases = ", ".join(f"{k[:-2]} {v * 1e3:.1f}ms"
                           for k, v in entry.items() if k != "total_s")
        lines.append(f"  n={n:>3} phases: {phases}")
    return lines


REGISTRY: Dict[str, Experiment] = {
    "fig2": Experiment(
        "fig2", "Aggregate two-transmitter capacity with SIC",
        fig2.compute, _render_sweep),
    "fig3": Experiment(
        "fig3", "Relative capacity gain heatmap (C+SIC / C-SIC)",
        fig3.compute, _render_grid),
    "fig4": Experiment(
        "fig4", "Same-receiver completion-time gain heatmap",
        fig4.compute, _render_grid),
    "fig6": Experiment(
        "fig6", "Monte-Carlo CDF: two pairs, different receivers",
        fig6.compute, _render_gain_map),
    "fig7": Experiment(
        "fig7", "Architectures: EWLAN / residential / mesh (Section 4)",
        fig7.compute, fig7.render),
    "fig8": Experiment(
        "fig8", "Download two APs -> one client gain heatmap",
        fig8.compute, _render_grid),
    "fig10": Experiment(
        "fig10", "Worked 4-client pairing example",
        fig10.compute, _render_fig10),
    "fig11": Experiment(
        "fig11", "Technique CDFs (power control, multirate, packing)",
        fig11.compute, _render_fig11),
    "fig12": Experiment(
        "fig12", "Scheduler vs baselines + runtime scaling",
        fig12.compute, _render_fig12),
    "fig13": Experiment(
        "fig13", "Trace-based upload pairing evaluation",
        fig13.compute, _render_gain_map),
    "fig14": Experiment(
        "fig14", "Trace-based two AP-client pairs (arbitrary/discrete)",
        fig14.compute, _render_gain_map),
}


def jsonify(value):
    """Recursively convert a figure result into JSON-compatible data.

    Handles the shapes the figure modules return: numpy arrays/scalars,
    dataclass-like result objects (via ``to_dict`` or ``__dict__``),
    enums, and nested containers.  Dict keys are stringified (tuple
    keys like AP pairs become ``"a|b"``).
    """
    import dataclasses
    import enum

    import numpy as np

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, enum.Enum):
        return value.value
    if hasattr(value, "to_dict"):
        return jsonify(value.to_dict())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: jsonify(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if isinstance(key, tuple):
                key = "|".join(str(part) for part in key)
            elif isinstance(key, enum.Enum):
                key = key.value
            out[str(key)] = jsonify(item)
        return out
    if isinstance(value, (list, tuple, set)):
        return [jsonify(item) for item in value]
    return repr(value)


def figure_sort_key(figure: str) -> Tuple[int, str]:
    """Paper-order sort key: ``fig2`` before ``fig10``, not after.

    Plain ``sorted(REGISTRY)`` is lexicographic (fig10, fig11, …, fig2)
    — every ``all``/``list`` consumer sorts through this key instead.
    Unparsable identifiers sort last, alphabetically.
    """
    match = re.match(r"fig(\d+)$", figure)
    if match is None:
        return (10**9, figure)
    return (int(match.group(1)), figure)


def ordered_figures() -> List[str]:
    """All registered figure identifiers in paper order."""
    return sorted(REGISTRY, key=figure_sort_key)


@dataclass(frozen=True)
class ExperimentRun:
    """One computed figure: raw result plus its printable rows.

    ``lines`` starts with the ``== figN: description ==`` header the CLI
    has always printed; ``result`` is the figure's native return value
    for ``--json`` dumps and golden comparisons.
    """

    figure: str
    description: str
    result: object
    lines: List[str]


def run_experiment(figure: str, **kwargs) -> ExperimentRun:
    """Compute and render one figure — the single dispatch point.

    Every execution path (single-figure CLI, ``all`` via the suite
    engine, the package smoke test) routes through here, so computing
    and rendering cannot drift apart between paths.
    """
    if figure not in REGISTRY:
        known = ", ".join(ordered_figures())
        raise KeyError(f"unknown figure {figure!r}; known: {known}")
    experiment = REGISTRY[figure]
    result = experiment.compute(**kwargs)
    lines = [f"== {experiment.figure}: {experiment.description} =="] \
        + experiment.render(result)
    return ExperimentRun(figure=experiment.figure,
                         description=experiment.description,
                         result=result, lines=lines)
