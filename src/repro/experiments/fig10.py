"""Fig. 10 — the worked 4-client pairing example.

The paper illustrates client pairing with four clients whose solo
packet airtimes are 1, 2, 4 and 8 time units (C1 closest to the AP, C4
farthest).  It reports, *as an illustration* ("these values are not
precise"): serial 15 units; pairings (C1|C2, C3|C4) = 11.5,
(C1|C3, C2|C4) = 12, (C1|C4, C2|C3) = 13; power control improves the
best pairing to 11; multirate packetization to about 10.4.

We reconstruct the scenario exactly — four SNRs chosen so the solo
airtimes are 1:2:4:8 — and compute the same quantities from the model.
The absolute numbers differ from the paper's illustrative ones (theirs
do not satisfy the Shannon arithmetic), but every *ordering* the figure
conveys must hold, and the tests pin those orderings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel, shannon_rate
from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.sic.airtime import z_sic_same_receiver
from repro.techniques.multirate import multirate_pair_airtime
from repro.techniques.packing import pack_uplink_airtime
from repro.techniques.pairing import TechniqueSet
from repro.techniques.power_control import power_controlled_pair_airtime
from repro.util.units import db_to_linear

DEFAULT_BANDWIDTH_HZ = 20e6
#: Weakest client's SNR (linear).  10 => ~3.46 b/s/Hz for C4.
BASE_SNR_LINEAR = 10.0

PAIRINGS: Tuple[Tuple[Tuple[int, int], Tuple[int, int]], ...] = (
    ((0, 1), (2, 3)),   # (C1|C2, C3|C4)
    ((0, 2), (1, 3)),   # (C1|C3, C2|C4)
    ((0, 3), (1, 2)),   # (C1|C4, C2|C3)
)


@dataclass(frozen=True)
class Fig10Result:
    """All completion times of the worked example, in C1 time units."""

    serial_units: float
    pairing_units: Dict[str, float]
    best_pairing: str
    power_control_units: float
    multirate_units: float
    #: Fig. 10g: C1 and C3 packed serially under C4's slow packet
    #: (future-hardware mid-air joins), C2 transmitted alone.
    packing_units: float
    scheduler_units: float

    def rows(self) -> List[str]:
        lines = [f"serial (no SIC): {self.serial_units:.3f} units"]
        for label, units in self.pairing_units.items():
            marker = "  <- best" if label == self.best_pairing else ""
            lines.append(f"pairing {label}: {units:.3f} units{marker}")
        lines.append(f"best pairing + power control: "
                     f"{self.power_control_units:.3f} units")
        lines.append(f"best pairing + multirate: "
                     f"{self.multirate_units:.3f} units")
        lines.append(f"packing C1,C3 under C4 (Fig. 10g): "
                     f"{self.packing_units:.3f} units")
        lines.append(f"blossom scheduler (all techniques): "
                     f"{self.scheduler_units:.3f} units")
        return lines


def client_rss_watts(channel: Channel,
                     base_snr_linear: float = BASE_SNR_LINEAR) -> List[float]:
    """Four RSS values whose solo airtimes are in ratio 1:2:4:8.

    Solo airtime is inversely proportional to ``log2(1 + snr)``, so the
    required SNRs are ``2^(k * eff4) - 1`` for k = 8, 4, 2, 1 where
    ``eff4 = log2(1 + base_snr)``.
    """
    import math
    eff4 = math.log2(1.0 + base_snr_linear)
    snrs = [2.0 ** (k * eff4) - 1.0 for k in (8, 4, 2, 1)]
    return [snr * channel.noise_w for snr in snrs]


def detuned_client_rss_watts(channel: Channel) -> List[float]:
    """A variant where the pairs are *imperfect* (paper Figs. 10e/10f).

    The canonical 1:2:4:8 construction happens to land every adjacent
    pair exactly on the equal-rate sweet spot (each SNR is the square of
    the next), so power control and multirate have nothing to fix.  The
    paper's illustration clearly intends imperfect pairs — power control
    improves 11.5 to 11, multirate to ~10.4.  Here all four clients have
    *similar* RSS, so every pairing's RSS gap is narrower than the
    equal-rate optimum, the stronger client is always the bottleneck,
    and power control / multirate strictly improve on plain pairing —
    precisely the regime those techniques target.
    """
    snr_db = [40.0, 36.0, 35.0, 31.0]
    return [float(db_to_linear(x)) * channel.noise_w for x in snr_db]


def compute(bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ,
            packet_bits: float = 12_000.0,
            base_snr_linear: float = BASE_SNR_LINEAR,
            detuned: bool = False) -> Fig10Result:
    """Recompute every Fig. 10 quantity from the model.

    ``detuned=True`` uses the imperfect-pair variant (see
    :func:`detuned_client_rss_watts`), in which power control and
    multirate packetization strictly improve on plain pairing.
    """
    channel = Channel(bandwidth_hz=bandwidth_hz,
                      noise_w=thermal_noise_watts(bandwidth_hz))
    if detuned:
        rss = detuned_client_rss_watts(channel)
    else:
        rss = client_rss_watts(channel, base_snr_linear)
    names = ["C1", "C2", "C3", "C4"]

    solo = [packet_bits / float(shannon_rate(bandwidth_hz, s, 0.0,
                                             channel.noise_w))
            for s in rss]
    unit = solo[0]  # C1's airtime == 1 time unit

    serial = sum(solo) / unit

    pairing_units: Dict[str, float] = {}
    for (a1, b1), (a2, b2) in PAIRINGS:
        t = (float(z_sic_same_receiver(channel, packet_bits,
                                       rss[a1], rss[b1]))
             + float(z_sic_same_receiver(channel, packet_bits,
                                         rss[a2], rss[b2])))
        label = (f"({names[a1]}|{names[b1]}, {names[a2]}|{names[b2]})")
        pairing_units[label] = t / unit
    best_pairing = min(pairing_units, key=pairing_units.get)

    # Power control and multirate applied to the best pairing's pairs.
    best_idx = PAIRINGS[list(pairing_units).index(best_pairing)]
    pc_total = sum(
        power_controlled_pair_airtime(channel, packet_bits,
                                      rss[i], rss[j]).airtime_s
        for (i, j) in best_idx)
    mr_total = sum(
        multirate_pair_airtime(channel, packet_bits,
                               rss[i], rss[j]).airtime_s
        for (i, j) in best_idx)

    # Fig. 10g: pack C1 and C3 serially under C4's low-rate packet
    # (requires future mid-air joins), with C2 alone afterwards.
    packed = pack_uplink_airtime(channel, packet_bits,
                                 slow_rss_w=rss[3],
                                 fast_rss_ws=[rss[0], rss[2]],
                                 allow_mid_air_joins=True)
    packing_total = packed.airtime_s + solo[1]

    scheduler = SicScheduler(channel=channel, packet_bits=packet_bits,
                             techniques=TechniqueSet.ALL)
    clients = [UploadClient(n, s) for n, s in zip(names, rss)]
    schedule = scheduler.schedule(clients)

    return Fig10Result(
        serial_units=serial,
        pairing_units=pairing_units,
        best_pairing=best_pairing,
        power_control_units=pc_total / unit,
        multirate_units=mr_total / unit,
        packing_units=packing_total / unit,
        scheduler_units=schedule.total_time_s / unit,
    )
