"""Fig. 14 — trace-based evaluation of two AP-client pairs.

Panel (a): arbitrary (Shannon-ideal) bitrates from the recorded SNRs —
"even with packing SIC offers limited gains", similar to Fig. 11b.
Panel (b): only the discrete 802.11g bitrates measured at the 90 %
packet-success criterion — "the performance of SIC improves under
discrete bitrates ... with packet packing, SIC offers more than 20 %
gain in 40 % scenarios".

Each scenario draws two client locations and two distinct APs from the
(synthetic) measurement campaign; AP_a serves location 1 while AP_b
serves location 2 concurrently.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.montecarlo import two_receiver_packing_gain
from repro.phy.shannon import Channel
from repro.sic.discrete import (
    DiscretePairRates,
    discrete_packing_gain,
    evaluate_discrete_pair,
)
from repro.sic.scenarios import PairRss, evaluate_pair_scenario
from repro.traces.downlink import DownlinkTraceConfig, DownlinkTraceGenerator
from repro.traces.records import DownlinkMeasurement
from repro.util.cdf import gain_cdf_summary
from repro.util.rng import SeedLike, make_rng
from repro.util.units import db_to_linear

DEFAULT_BANDWIDTH_HZ = 20e6
DEFAULT_PACKET_BITS = 12_000.0


def _scenario_rss(loc1: DownlinkMeasurement, loc2: DownlinkMeasurement,
                  ap_a: str, ap_b: str) -> PairRss:
    """S_j^i values in noise-normalised units (N0 == 1)."""
    return PairRss(
        s11=float(db_to_linear(loc1.snr_db[ap_a])),
        s12=float(db_to_linear(loc1.snr_db[ap_b])),
        s21=float(db_to_linear(loc2.snr_db[ap_a])),
        s22=float(db_to_linear(loc2.snr_db[ap_b])),
    )


def _scenario_discrete_rates(loc1: DownlinkMeasurement,
                             loc2: DownlinkMeasurement,
                             ap_a: str, ap_b: str) -> DiscretePairRates:
    return DiscretePairRates(
        clean_1=loc1.clean_rate_bps[ap_a],
        clean_2=loc2.clean_rate_bps[ap_b],
        interfered_11=loc1.interfered_rate_bps[(ap_a, ap_b)],
        interfered_21=loc2.interfered_rate_bps[(ap_a, ap_b)],
        interfered_22=loc2.interfered_rate_bps[(ap_b, ap_a)],
        interfered_12=loc1.interfered_rate_bps[(ap_b, ap_a)],
    )


def compute(measurements: Optional[Sequence[DownlinkMeasurement]] = None,
            n_scenarios: int = 2_000,
            seed: SeedLike = 2010,
            bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ,
            packet_bits: float = DEFAULT_PACKET_BITS,
            trace_config: Optional[DownlinkTraceConfig] = None,
            ) -> Dict[str, Dict[str, object]]:
    """Both panels over random two-pair scenarios from the campaign.

    Returns ``{"arbitrary": {...}, "arbitrary+packing": {...},
    "discrete": {...}, "discrete+packing": {...}}`` with gain arrays
    and summaries, plus a ``meta`` entry.
    """
    rng = make_rng(seed)
    if measurements is None:
        config = trace_config or DownlinkTraceConfig()
        measurements = DownlinkTraceGenerator(config).generate(rng)
    if len(measurements) < 2:
        raise ValueError("need at least two client locations")
    ap_names = measurements[0].ap_names
    if len(ap_names) < 2:
        raise ValueError("need at least two APs")

    # Noise-normalised channel: RSS values are linear SNRs.
    channel = Channel(bandwidth_hz=bandwidth_hz, noise_w=1.0)

    gains: Dict[str, List[float]] = {
        "arbitrary": [], "arbitrary+packing": [],
        "discrete": [], "discrete+packing": [],
    }
    for _ in range(n_scenarios):
        i, j = rng.choice(len(measurements), size=2, replace=False)
        loc1, loc2 = measurements[int(i)], measurements[int(j)]
        a_idx, b_idx = rng.choice(len(ap_names), size=2, replace=False)
        ap_a, ap_b = ap_names[int(a_idx)], ap_names[int(b_idx)]

        rss = _scenario_rss(loc1, loc2, ap_a, ap_b)
        scenario = evaluate_pair_scenario(channel, packet_bits, rss)
        gains["arbitrary"].append(scenario.gain)
        gains["arbitrary+packing"].append(
            two_receiver_packing_gain(channel, packet_bits, rss, scenario,
                                      max_fast_packets=8))

        rates = _scenario_discrete_rates(loc1, loc2, ap_a, ap_b)
        discrete = evaluate_discrete_pair(packet_bits, rss, rates)
        gains["discrete"].append(discrete.gain)
        gains["discrete+packing"].append(
            discrete_packing_gain(packet_bits, discrete, rates))

    result: Dict[str, Dict[str, object]] = {
        label: {"gains": np.asarray(values),
                "summary": gain_cdf_summary(values)}
        for label, values in gains.items()
    }
    result["meta"] = {
        "n_scenarios": n_scenarios,
        "n_locations": len(measurements),
        "ap_names": ap_names,
    }
    return result
