"""Fig. 14 — trace-based evaluation of two AP-client pairs.

Panel (a): arbitrary (Shannon-ideal) bitrates from the recorded SNRs —
"even with packing SIC offers limited gains", similar to Fig. 11b.
Panel (b): only the discrete 802.11g bitrates measured at the 90 %
packet-success criterion — "the performance of SIC improves under
discrete bitrates ... with packet packing, SIC offers more than 20 %
gain in 40 % scenarios".

Each scenario draws two client locations and two distinct APs from the
(synthetic) measurement campaign; AP_a serves location 1 while AP_b
serves location 2 concurrently.

Fast path (``docs/trace_performance.md``): the campaign comes from the
vectorised downlink generator and the scenario index table is drawn
up-front from the unchanged RNG stream, so the (deterministic) scenario
evaluations can fan out across worker processes through the supervised
indexed runner.  :func:`compute_scalar` freezes the historical serial
pipeline as the golden reference.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.montecarlo import two_receiver_packing_gain
from repro.experiments.runner import (
    ExecutionPolicy,
    run_indexed,
    seed_cache_token,
)
from repro.phy.shannon import Channel
from repro.sic.discrete import (
    DiscretePairRates,
    discrete_packing_gain,
    evaluate_discrete_pair,
)
from repro.sic.scenarios import PairRss, evaluate_pair_scenario
from repro.traces.downlink import DownlinkTraceConfig, DownlinkTraceGenerator
from repro.traces.records import DownlinkMeasurement
from repro.util.cache import ResultCache
from repro.util.cdf import gain_cdf_summary
from repro.util.rng import SeedLike, make_rng
from repro.util.timing import PhaseTimer, maybe_phase
from repro.util.units import db_to_linear

DEFAULT_BANDWIDTH_HZ = 20e6
DEFAULT_PACKET_BITS = 12_000.0

#: The four curves of Fig. 14 (panels a and b).
GAIN_LABELS = ("arbitrary", "arbitrary+packing",
               "discrete", "discrete+packing")

#: Scenarios per chunk — fixed (not derived from ``n_workers``) so the
#: chunk layout and every cache/checkpoint key match across worker
#: counts.
SCENARIO_CHUNK = 250


def _scenario_rss(loc1: DownlinkMeasurement, loc2: DownlinkMeasurement,
                  ap_a: str, ap_b: str) -> PairRss:
    """S_j^i values in noise-normalised units (N0 == 1)."""
    return PairRss(
        s11=float(db_to_linear(loc1.snr_db[ap_a])),
        s12=float(db_to_linear(loc1.snr_db[ap_b])),
        s21=float(db_to_linear(loc2.snr_db[ap_a])),
        s22=float(db_to_linear(loc2.snr_db[ap_b])),
    )


def _scenario_discrete_rates(loc1: DownlinkMeasurement,
                             loc2: DownlinkMeasurement,
                             ap_a: str, ap_b: str) -> DiscretePairRates:
    return DiscretePairRates(
        clean_1=loc1.clean_rate_bps[ap_a],
        clean_2=loc2.clean_rate_bps[ap_b],
        interfered_11=loc1.interfered_rate_bps[(ap_a, ap_b)],
        interfered_21=loc2.interfered_rate_bps[(ap_a, ap_b)],
        interfered_22=loc2.interfered_rate_bps[(ap_b, ap_a)],
        interfered_12=loc1.interfered_rate_bps[(ap_b, ap_a)],
    )


@dataclass(frozen=True)
class _ScenarioBatch:
    """Picklable chunk config: campaign + pre-drawn scenario table."""

    measurements: Tuple[DownlinkMeasurement, ...]
    ap_names: Tuple[str, ...]
    #: Per scenario: ``(loc_i, loc_j, ap_a_idx, ap_b_idx)``.
    scenario_idx: Tuple[Tuple[int, int, int, int], ...]
    bandwidth_hz: float
    packet_bits: float


def _fig14_chunk(batch: _ScenarioBatch, start: int,
                 n: int) -> Dict[str, np.ndarray]:
    """Evaluate scenarios ``[start, start + n)`` for all four curves.

    Deterministic given the batch — the randomness lives entirely in
    the pre-drawn ``scenario_idx`` table — so chunking and worker count
    cannot change results.
    """
    channel = Channel(bandwidth_hz=batch.bandwidth_hz, noise_w=1.0)
    out = {label: np.empty(n) for label in GAIN_LABELS}
    for k in range(n):
        i, j, a_idx, b_idx = batch.scenario_idx[start + k]
        loc1, loc2 = batch.measurements[i], batch.measurements[j]
        ap_a, ap_b = batch.ap_names[a_idx], batch.ap_names[b_idx]

        rss = _scenario_rss(loc1, loc2, ap_a, ap_b)
        scenario = evaluate_pair_scenario(channel, batch.packet_bits, rss)
        out["arbitrary"][k] = scenario.gain
        out["arbitrary+packing"][k] = two_receiver_packing_gain(
            channel, batch.packet_bits, rss, scenario, max_fast_packets=8)

        rates = _scenario_discrete_rates(loc1, loc2, ap_a, ap_b)
        discrete = evaluate_discrete_pair(batch.packet_bits, rss, rates)
        out["discrete"][k] = discrete.gain
        out["discrete+packing"][k] = discrete_packing_gain(
            batch.packet_bits, discrete, rates)
    return out


def compute(measurements: Optional[Sequence[DownlinkMeasurement]] = None,
            n_scenarios: int = 2_000,
            seed: SeedLike = 2010,
            bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ,
            packet_bits: float = DEFAULT_PACKET_BITS,
            trace_config: Optional[DownlinkTraceConfig] = None,
            *,
            n_workers: int = 1,
            chunk_size: Optional[int] = None,
            cache: Optional[ResultCache] = None,
            policy: Optional[ExecutionPolicy] = None,
            timer: Optional[PhaseTimer] = None,
            ) -> Dict[str, Dict[str, object]]:
    """Both panels over random two-pair scenarios from the campaign.

    Returns ``{"arbitrary": {...}, "arbitrary+packing": {...},
    "discrete": {...}, "discrete+packing": {...}}`` with gain arrays
    and summaries, plus a ``meta`` entry.

    The campaign generation and scenario draws replay the scalar RNG
    stream exactly; the scenario evaluations run through
    :func:`~repro.experiments.runner.run_indexed` (``n_workers``
    processes, ``policy`` fault handling, checkpoint/resume, result
    cache for generated campaigns with cacheable seeds) with results
    bit-identical to :func:`compute_scalar` for any worker count.
    ``timer`` phases: ``trace_gen`` / ``draw`` / ``evaluate`` /
    ``assembly``.
    """
    rng = make_rng(seed)
    generated = measurements is None
    config = None
    if generated:
        config = trace_config or DownlinkTraceConfig()
        with maybe_phase(timer, "trace_gen"):
            measurements = DownlinkTraceGenerator(config).generate(rng)
    if len(measurements) < 2:
        raise ValueError("need at least two client locations")
    ap_names = measurements[0].ap_names
    if len(ap_names) < 2:
        raise ValueError("need at least two APs")

    with maybe_phase(timer, "draw"):
        scenario_idx: List[Tuple[int, int, int, int]] = []
        for _ in range(n_scenarios):
            # Per-scenario draws are the frozen stream: compute_scalar
            # draws locations-then-APs per scenario, and choice(...,
            # replace=False) consumes a data-dependent number of values,
            # so the two draws cannot be blocked without desyncing.
            i, j = rng.choice(len(measurements), size=2, replace=False)  # repro-lint: disable=RPR403
            a_idx, b_idx = rng.choice(len(ap_names), size=2, replace=False)  # repro-lint: disable=RPR403
            scenario_idx.append((int(i), int(j), int(a_idx), int(b_idx)))

    with maybe_phase(timer, "evaluate"):
        batch = _ScenarioBatch(
            measurements=tuple(measurements),
            ap_names=tuple(ap_names),
            scenario_idx=tuple(scenario_idx),
            bandwidth_hz=bandwidth_hz,
            packet_bits=packet_bits)
        cache_key = None
        if generated:
            token = seed_cache_token(seed)
            if token is not None:
                cache_key = {"trace_config": asdict(config),
                             "seed": token,
                             "n_scenarios": n_scenarios,
                             "bandwidth_hz": bandwidth_hz,
                             "packet_bits": packet_bits}
        merged = run_indexed(
            "fig14", _fig14_chunk, batch, n_scenarios,
            code_version=1, cache_key=cache_key, n_workers=n_workers,
            chunk_size=chunk_size if chunk_size is not None
            else SCENARIO_CHUNK,
            cache=cache, policy=policy)

    with maybe_phase(timer, "assembly"):
        result: Dict[str, Dict[str, object]] = {
            label: {"gains": merged[label],
                    "summary": gain_cdf_summary(merged[label])}
            for label in GAIN_LABELS
        }
        result["meta"] = {
            "n_scenarios": n_scenarios,
            "n_locations": len(measurements),
            "ap_names": ap_names,
        }
    return result


def compute_scalar(
        measurements: Optional[Sequence[DownlinkMeasurement]] = None,
        n_scenarios: int = 2_000,
        seed: SeedLike = 2010,
        bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ,
        packet_bits: float = DEFAULT_PACKET_BITS,
        trace_config: Optional[DownlinkTraceConfig] = None,
        ) -> Dict[str, Dict[str, object]]:
    """The historical serial pipeline, behaviourally frozen (PR-1
    convention): scalar campaign generation and one interleaved
    draw-and-evaluate loop.  Golden reference for :func:`compute`."""
    rng = make_rng(seed)
    if measurements is None:
        config = trace_config or DownlinkTraceConfig()
        measurements = DownlinkTraceGenerator(config).generate_scalar(rng)
    if len(measurements) < 2:
        raise ValueError("need at least two client locations")
    ap_names = measurements[0].ap_names
    if len(ap_names) < 2:
        raise ValueError("need at least two APs")

    # Noise-normalised channel: RSS values are linear SNRs.
    channel = Channel(bandwidth_hz=bandwidth_hz, noise_w=1.0)

    gains: Dict[str, List[float]] = {label: [] for label in GAIN_LABELS}
    for _ in range(n_scenarios):
        i, j = rng.choice(len(measurements), size=2, replace=False)
        loc1, loc2 = measurements[int(i)], measurements[int(j)]
        a_idx, b_idx = rng.choice(len(ap_names), size=2, replace=False)
        ap_a, ap_b = ap_names[int(a_idx)], ap_names[int(b_idx)]

        rss = _scenario_rss(loc1, loc2, ap_a, ap_b)
        scenario = evaluate_pair_scenario(channel, packet_bits, rss)
        gains["arbitrary"].append(scenario.gain)
        gains["arbitrary+packing"].append(
            two_receiver_packing_gain(channel, packet_bits, rss, scenario,
                                      max_fast_packets=8))

        rates = _scenario_discrete_rates(loc1, loc2, ap_a, ap_b)
        discrete = evaluate_discrete_pair(packet_bits, rss, rates)
        gains["discrete"].append(discrete.gain)
        gains["discrete+packing"].append(
            discrete_packing_gain(packet_bits, discrete, rates))

    result: Dict[str, Dict[str, object]] = {
        label: {"gains": np.asarray(values),
                "summary": gain_cdf_summary(values)}
        for label, values in gains.items()
    }
    result["meta"] = {
        "n_scenarios": n_scenarios,
        "n_locations": len(measurements),
        "ap_names": ap_names,
    }
    return result
