"""Suite execution engine: one shared worker pool across all figures.

``python -m repro.experiments all`` used to run the figures strictly
one after another, each supervised ``compute()`` building a private
``ProcessPoolExecutor``, draining it, and tearing it down while every
other figure's work sat idle.  This module replaces that with a
**shared suite pool**:

* :class:`SuitePool` owns a single persistent ``ProcessPoolExecutor``
  plus a dispatcher thread feeding it from a global
  :class:`LaneQueue` — a fair round-robin over per-engine lanes, so
  chunks from a slow figure (fig13 trace eval, fig7 architecture
  sweeps) interleave with fast ones instead of serializing;
* :func:`run_suite` runs one thread per requested figure, each calling
  the ordinary :func:`repro.experiments.registry.run_experiment`; the
  supervised figures pick the shared pool up through
  :attr:`repro.experiments.runner.ExecutionPolicy.pool`, so every
  supervisor invariant (retries, watchdog, pool-rebuild escalation,
  checkpoint/resume, worker-count-invariant cache keys) holds
  unchanged — only *where* chunks execute moves.

Determinism: a chunk result is a pure function of
``(config, chunk seed, chunk size)``, and the suite never alters a
figure's chunk layout or seeds — it only reorders *where and when*
chunks run.  Suite-mode outputs are therefore bit-identical to
per-figure sequential runs for any worker count or interleaving
(pinned by the golden tests in ``tests/experiments/test_suite.py``).

Transport: suite runs enable the shared-memory chunk transport
(:mod:`repro.experiments.transport`) by default, so large fig13/fig7
payloads skip the pickle round-trip; a :class:`TransportStats` counter
feeds the suite summary (per-figure wall time, pool utilization,
transport bytes).

Failure semantics: a broken round (``BrokenProcessPool``, watchdog
trip, injected break) asks the pool to rebuild its executor once for
*all* lanes — generation counters make concurrent rebuild requests
idempotent.  Operator interrupts fail every queued chunk with the
interrupt, so each figure's supervisor flushes completed chunks to its
checkpoint store and the run exits "resumable".  Abandoned
shared-memory results are released on every path (see
``release_chunk``) so no segment outlives the run.
"""

from __future__ import annotations

import inspect
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, InvalidStateError, wait
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from functools import partial
from threading import Condition, RLock, Thread
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.experiments.registry import (
    REGISTRY,
    ExperimentRun,
    figure_sort_key,
    ordered_figures,
    run_experiment,
)
from repro.experiments.runner import ExecutionPolicy
from repro.experiments.transport import (
    TransportPolicy,
    TransportStats,
    ensure_resource_tracker,
    release_chunk,
)
from repro.util.timing import PhaseTimer

#: Per-worker warmup sleep: long enough to force the pool to actually
#: fork every worker before the figure threads start, cheap enough to
#: be invisible in the suite wall time.
_WARMUP_SLEEP_S = 0.02


def _warmup(delay_s: float) -> int:
    """Trivial pool task used to pre-fork workers; returns worker pid."""
    # Not a retry backoff: this sleep only keeps the warmup task alive
    # long enough that every pool worker forks before real work lands.
    time.sleep(delay_s)  # repro-lint: disable=RPR303
    return os.getpid()


def default_suite_workers() -> int:
    """Worker count the CLI uses when ``--workers`` is not given."""
    return min(4, os.cpu_count() or 1)


class LaneQueue:
    """Fair round-robin queue of tasks keyed by lane name.

    ``pop`` serves one task from the least-recently-served non-empty
    lane, so a figure enqueueing hundreds of chunks cannot starve a
    figure with three.  Not thread-safe on its own — :class:`SuitePool`
    guards it with its condition lock.
    """

    def __init__(self) -> None:
        self._lanes: "OrderedDict[str, Deque[object]]" = OrderedDict()

    def push(self, lane: str, item: object) -> None:
        self._lanes.setdefault(lane, deque()).append(item)

    def pop(self) -> object:
        """The next task in round-robin order; raises ``IndexError`` empty."""
        for lane in list(self._lanes):
            queue = self._lanes[lane]
            if not queue:
                del self._lanes[lane]
                continue
            item = queue.popleft()
            # Rotate the served lane to the back so siblings go next.
            self._lanes.move_to_end(lane)
            if not queue:
                del self._lanes[lane]
            return item
        raise IndexError("pop from empty LaneQueue")

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._lanes.values())

    def lanes(self) -> List[str]:
        """Non-empty lane names, current round-robin order."""
        return [lane for lane, queue in self._lanes.items() if queue]


class _SuiteTask:
    """One submitted chunk: the caller's proxy future plus its work."""

    __slots__ = ("proxy", "fn", "args", "lane", "abandoned", "started_at")

    def __init__(self, proxy: Future, fn: Callable[..., object],
                 args: Tuple[object, ...], lane: str) -> None:
        self.proxy = proxy
        self.fn = fn
        self.args = args
        self.lane = lane
        self.abandoned = False
        self.started_at: Optional[float] = None


def _fail_proxy(proxy: Future, exc: BaseException) -> None:
    """Deliver a failure unless the proxy already settled."""
    if proxy.cancelled():
        return
    try:
        proxy.set_exception(exc)
    except InvalidStateError:
        pass


class _SuiteRound:
    """One supervisor round's view of the shared pool (one lane).

    Matches the ``SharedRoundLike`` protocol the runner programs
    against: ``submit`` chunks, declare the round ``broken`` to request
    a pool rebuild, ``abandon`` leftovers so their transported results
    are released whenever they land.
    """

    def __init__(self, pool: "SuitePool", lane: str,
                 generation: int) -> None:
        self._pool = pool
        self._lane = lane
        self._generation = generation

    def submit(self, fn: Callable[..., object], *args: object) -> Future:
        return self._pool._submit(self._lane, fn, args)

    def broken(self) -> None:
        self._pool._rebuild(self._generation)

    def abandon(self, futures: List[Future]) -> None:
        self._pool._abandon(futures)


class SuitePool:
    """A persistent supervised worker pool shared across figures.

    Figures submit chunks through per-engine lanes
    (:meth:`open_round`); a dispatcher thread drains the fair
    round-robin queue into one long-lived ``ProcessPoolExecutor``,
    throttled to ``2 x workers`` in-flight chunks so no single figure
    floods the pool.  Callers receive proxy futures with ordinary
    ``concurrent.futures`` semantics, so the runner's drain loop works
    on them untouched.

    An underlying chunk cancelled by a rebuild surfaces on its proxy
    as ``BrokenProcessPool`` — *never* ``CancelledError``, which is a
    ``BaseException`` and would sail past the supervisor's
    ``except BrokenExecutor`` recovery path.
    """

    def __init__(self, n_workers: Optional[int] = None, *,
                 warmup: bool = True) -> None:
        self.workers = n_workers if n_workers is not None \
            else default_suite_workers()
        if self.workers < 1:
            raise ValueError("n_workers must be positive")
        self.max_inflight = 2 * self.workers
        self._cond = Condition(RLock())
        self._queue = LaneQueue()
        self._inflight = 0
        self._generation = 0
        self._closed = False
        self._interrupt: Optional[BaseException] = None
        self._tasks_done = 0
        self._busy_s = 0.0
        self._rebuilds = 0
        self._lane_done: Dict[str, int] = {}
        self._retired: List[ProcessPoolExecutor] = []
        self._created_at = time.monotonic()
        self._executor = self._new_executor(warmup=warmup)
        self._dispatcher = Thread(target=self._dispatch_loop,
                                  name="suite-dispatcher", daemon=True)
        self._dispatcher.start()

    # -- lifecycle ---------------------------------------------------------

    def _new_executor(self, warmup: bool = False) -> ProcessPoolExecutor:
        # The tracker must exist before workers fork, or worker-created
        # shared-memory segments register with per-worker trackers the
        # parent's unlink never reaches (spurious leak warnings).
        ensure_resource_tracker()
        executor = ProcessPoolExecutor(max_workers=self.workers)
        if warmup:
            # Fork every worker *now*, before figure threads exist —
            # forking a many-threaded parent mid-run is the risky path.
            wait([executor.submit(_warmup, _WARMUP_SLEEP_S)
                  for _ in range(self.workers)], timeout=60.0)
        return executor

    def __enter__(self) -> "SuitePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down; idempotent.

        Queued chunks fail with ``BrokenProcessPool``; in-flight chunks
        finish (their results are delivered or released as usual), then
        every executor this pool ever owned is joined.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._dispatcher.join(timeout=60.0)
        with self._cond:
            executors = [self._executor] + self._retired
            self._retired = []
        for executor in executors:
            executor.shutdown(wait=True)

    def interrupt(self, exc: BaseException) -> None:
        """Fail every queued chunk with ``exc`` (operator interrupt).

        In-flight chunks are left to finish; each figure's supervisor
        sees ``exc`` on its next proxy result, flushes its completed
        chunks to the checkpoint store, and unwinds resumably.
        """
        with self._cond:
            self._interrupt = exc
            while len(self._queue):
                task = self._queue.pop()
                assert isinstance(task, _SuiteTask)
                _fail_proxy(task.proxy, exc)
            self._cond.notify_all()

    # -- figure-facing API -------------------------------------------------

    def open_round(self, lane: str) -> _SuiteRound:
        """A round handle whose submissions ride the given lane."""
        with self._cond:
            return _SuiteRound(self, lane, self._generation)

    def stats(self) -> Dict[str, object]:
        """Utilization snapshot for the suite summary."""
        with self._cond:
            wall_s = time.monotonic() - self._created_at
            busy_s = self._busy_s
            capacity = wall_s * self.workers
            return {
                "workers": self.workers,
                "tasks_done": self._tasks_done,
                "busy_s": busy_s,
                "wall_s": wall_s,
                "rebuilds": self._rebuilds,
                "utilization": busy_s / capacity if capacity > 0 else 0.0,
                "lanes": dict(self._lane_done),
            }

    # -- internal ----------------------------------------------------------

    def _submit(self, lane: str, fn: Callable[..., object],
                args: Tuple[object, ...]) -> Future:
        proxy: Future = Future()
        task = _SuiteTask(proxy, fn, args, lane)
        proxy._suite_task = task  # type: ignore[attr-defined]
        with self._cond:
            if self._interrupt is not None:
                _fail_proxy(proxy, self._interrupt)
            elif self._closed:
                _fail_proxy(proxy, BrokenProcessPool("suite pool closed"))
            else:
                self._queue.push(lane, task)
                self._cond.notify_all()
        return proxy

    def _abandon(self, futures: List[Future]) -> None:
        """Disown proxies whose results nobody will consume."""
        with self._cond:
            for future in futures:
                task = getattr(future, "_suite_task", None)
                if isinstance(task, _SuiteTask):
                    task.abandoned = True
                future.cancel()
                if future.done() and not future.cancelled() \
                        and future.exception() is None:
                    release_chunk(future.result())

    def _rebuild(self, generation: int) -> None:
        """Replace the executor, once per generation.

        Every lane whose round broke against the same executor calls
        this with the same generation; the first call swaps the
        executor, the rest are no-ops against the already-bumped
        counter.
        """
        with self._cond:
            if generation != self._generation or self._closed:
                return
            old = self._executor
            self._generation += 1
            self._rebuilds += 1
            self._executor = self._new_executor()
            self._retired.append(old)
        old.shutdown(wait=False, cancel_futures=True)

    def _ready_locked(self) -> bool:
        return len(self._queue) > 0 and self._inflight < self.max_inflight

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._closed and not self._ready_locked():
                    self._cond.wait()
                if self._closed:
                    while len(self._queue):
                        task = self._queue.pop()
                        assert isinstance(task, _SuiteTask)
                        _fail_proxy(task.proxy,
                                    BrokenProcessPool("suite pool closed"))
                    return
                task = self._queue.pop()
                assert isinstance(task, _SuiteTask)
                if not task.proxy.set_running_or_notify_cancel():
                    continue  # cancelled while queued
                self._inflight += 1
                generation = self._generation
                executor = self._executor
            task.started_at = time.monotonic()
            try:
                underlying = executor.submit(task.fn, *task.args)
            except BaseException as exc:  # broken/shut-down executor
                with self._cond:
                    self._inflight -= 1
                    _fail_proxy(task.proxy, BrokenProcessPool(
                        str(exc) or type(exc).__name__))
                    self._cond.notify_all()
                continue
            underlying.add_done_callback(
                partial(self._on_done, task, generation))

    def _on_done(self, task: _SuiteTask, generation: int,
                 underlying: Future) -> None:
        with self._cond:
            self._inflight -= 1
            self._tasks_done += 1
            self._lane_done[task.lane] = self._lane_done.get(task.lane, 0) + 1
            if not underlying.cancelled() and task.started_at is not None:
                self._busy_s += max(0.0,
                                    time.monotonic() - task.started_at)
            if underlying.cancelled():
                # Rebuild cancelled it while queued on the old executor.
                _fail_proxy(task.proxy, BrokenProcessPool(
                    "shared pool rebuilt while the chunk was queued"))
            else:
                exc = underlying.exception()
                if exc is not None:
                    _fail_proxy(task.proxy, exc)
                else:
                    result = underlying.result()
                    delivered = False
                    if not task.abandoned:
                        try:
                            task.proxy.set_result(result)
                            delivered = True
                        except InvalidStateError:
                            pass
                    if not delivered:
                        release_chunk(result)
            self._cond.notify_all()


# ---------------------------------------------------------------------------
# Suite runner
# ---------------------------------------------------------------------------

@dataclass
class FigureOutcome:
    """One figure's result within a suite run."""

    figure: str
    run: Optional[ExperimentRun]
    wall_s: float
    error: Optional[BaseException] = None

    @property
    def lines(self) -> List[str]:
        return self.run.lines if self.run is not None else []


@dataclass
class SuiteResult:
    """Everything a suite run produced, in paper order."""

    outcomes: List[FigureOutcome]
    pool_stats: Dict[str, object]
    transport: Dict[str, int]
    wall_s: float
    timer: PhaseTimer

    def runs(self) -> Dict[str, ExperimentRun]:
        """Successful figure runs keyed by figure id."""
        return {outcome.figure: outcome.run for outcome in self.outcomes
                if outcome.run is not None}

    def summary_lines(self) -> List[str]:
        """The suite-level timing/transport summary the CLI prints."""
        stats = self.pool_stats
        lines = [
            f"== suite: {len(self.outcomes)} figures, "
            f"{stats['workers']} workers, {self.wall_s:.2f}s wall =="]
        serial_s = sum(outcome.wall_s for outcome in self.outcomes)
        for outcome in self.outcomes:
            status = "ok" if outcome.error is None else (
                f"FAILED ({type(outcome.error).__name__})")
            lines.append(
                f"  {outcome.figure:>6}: {outcome.wall_s:7.2f}s {status}")
        lines.append(
            f"  figure-seconds {serial_s:.2f}s in {self.wall_s:.2f}s wall "
            f"(overlap {serial_s / self.wall_s:.2f}x)"
            if self.wall_s > 0 else
            f"  figure-seconds {serial_s:.2f}s")
        lines.append(
            "  pool: utilization {:.1%} (busy {:.2f}s / {} workers), "
            "{} chunks, {} rebuilds".format(
                stats["utilization"], stats["busy_s"], stats["workers"],
                stats["tasks_done"], stats["rebuilds"]))
        lines.append(
            "  transport: {shm_chunks} chunks / {shm_kib:.0f} KiB "
            "shared-memory, {pickled_chunks} chunks / {pickled_kib:.0f} "
            "KiB pickled".format(
                shm_chunks=self.transport["shm_chunks"],
                shm_kib=self.transport["shm_bytes"] / 1024,
                pickled_chunks=self.transport["pickled_chunks"],
                pickled_kib=self.transport["pickled_bytes"] / 1024))
        return lines


def _accepts(figure: str, name: str) -> bool:
    """Whether a figure's compute() takes a keyword argument ``name``."""
    try:
        signature = inspect.signature(REGISTRY[figure].compute)
    except (TypeError, ValueError):
        return False
    parameter = signature.parameters.get(name)
    return parameter is not None and parameter.kind in (
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
        inspect.Parameter.KEYWORD_ONLY)


def run_suite(figures: Optional[List[str]] = None,
              kwargs_by_figure: Optional[Mapping[str, Mapping[str, object]]]
              = None, *,
              n_workers: Optional[int] = None,
              policy: Optional[ExecutionPolicy] = None,
              transport: Optional[TransportPolicy] = None,
              pool: Optional[SuitePool] = None) -> SuiteResult:
    """Run a set of figures concurrently over one shared pool.

    Each figure runs on its own thread through the registry's single
    dispatch point with exactly the caller's kwargs — chunk layouts and
    seeds are untouched, so per-figure results are bit-identical to
    calling ``compute()`` directly with the same kwargs.  Supervised
    figures additionally receive an :class:`ExecutionPolicy` carrying
    the shared pool and the shared-memory transport (unless the caller
    already pinned a ``policy`` kwarg for that figure).

    Figure errors are collected so every figure gets to finish; the
    first failure in paper order is re-raised after all threads settle.
    A ``pool`` passed in is borrowed (left open); otherwise one is
    created and closed here.
    """
    requested = list(figures) if figures is not None else ordered_figures()
    unknown = [figure for figure in requested if figure not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown figures: {', '.join(unknown)}")
    requested.sort(key=figure_sort_key)
    kwargs_by_figure = kwargs_by_figure or {}

    own_pool = pool is None
    suite_pool = pool if pool is not None else SuitePool(n_workers)
    stats = TransportStats()
    base_policy = policy if policy is not None else ExecutionPolicy.from_env()
    suite_policy = replace(
        base_policy, pool=suite_pool,
        transport=transport if transport is not None else TransportPolicy(),
        transport_stats=stats)

    outcomes = {figure: FigureOutcome(figure, None, 0.0)
                for figure in requested}
    timers: Dict[str, PhaseTimer] = {}

    def _figure_body(figure: str) -> None:
        outcome = outcomes[figure]
        kwargs = dict(kwargs_by_figure.get(figure, {}))
        if _accepts(figure, "policy"):
            kwargs.setdefault("policy", suite_policy)
        if _accepts(figure, "timer") and "timer" not in kwargs:
            timers[figure] = PhaseTimer()
            kwargs["timer"] = timers[figure]
        start = time.perf_counter()
        try:
            outcome.run = run_experiment(figure, **kwargs)
        except BaseException as exc:  # collected; re-raised in paper order
            outcome.error = exc
        finally:
            outcome.wall_s = time.perf_counter() - start

    suite_start = time.perf_counter()
    threads = [Thread(target=_figure_body, args=(figure,),
                      name=f"suite-{figure}") for figure in requested]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    except BaseException as exc:  # operator interrupt in the main thread
        suite_pool.interrupt(exc)
        for thread in threads:
            thread.join(timeout=60.0)
        raise
    finally:
        if own_pool:
            suite_pool.close()

    suite_timer = PhaseTimer()
    for figure, timer in timers.items():
        suite_timer.merge(timer, prefix=f"{figure}.")

    result = SuiteResult(
        outcomes=[outcomes[figure] for figure in requested],
        pool_stats=suite_pool.stats(),
        transport=stats.as_dict(),
        wall_s=time.perf_counter() - suite_start,
        timer=suite_timer)

    for outcome in result.outcomes:
        if outcome.error is not None:
            raise outcome.error
    return result


__all__ = [
    "FigureOutcome",
    "LaneQueue",
    "SuitePool",
    "SuiteResult",
    "default_suite_workers",
    "run_suite",
]
