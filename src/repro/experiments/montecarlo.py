"""Monte-Carlo engines behind Figs. 6 and 11.

Each engine draws random building-block topologies, evaluates the gain
metric per draw, and returns the raw gain samples (the figure modules
turn those into CDFs and summary rows).

The placement recipe follows Section 3.2: transmitters a fixed *range*
apart, receivers uniform within range of their transmitter, RSS from
log-distance path loss with exponent alpha (default 4), gain computed
as ``Z_{-SIC} / Z_{+SIC}`` over 10 000 draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.phy.noise import thermal_noise_watts
from repro.phy.pathloss import LogDistancePathLoss
from repro.phy.shannon import Channel
from repro.sic.scenarios import PairRss, evaluate_pair_scenario
from repro.techniques.multirate import multirate_pair_airtime
from repro.techniques.packing import pack_pair_links
from repro.techniques.power_control import power_controlled_pair_airtime
from repro.sic.airtime import z_serial_same_receiver, z_sic_same_receiver
from repro.topology.generators import random_pair_topology, random_uplink_clients
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.util.rng import SeedLike, make_rng


@dataclass(frozen=True)
class MonteCarloConfig:
    """Shared Monte-Carlo parameters (paper defaults)."""

    n_samples: int = 10_000
    range_m: float = 20.0
    pathloss_exponent: float = 4.0
    tx_power_w: float = DEFAULT_TX_POWER_W
    bandwidth_hz: float = 20e6
    packet_bits: float = 12_000.0

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ValueError("need at least one sample")

    def channel(self) -> Channel:
        return Channel(bandwidth_hz=self.bandwidth_hz,
                       noise_w=thermal_noise_watts(self.bandwidth_hz))

    def propagation(self) -> LogDistancePathLoss:
        return LogDistancePathLoss(exponent=self.pathloss_exponent)


def two_receiver_gains(config: MonteCarloConfig,
                       seed: SeedLike = None) -> np.ndarray:
    """Fig. 6: SIC gain samples for random two-pair topologies."""
    gains, _ = two_receiver_scenarios(config, seed)
    return gains


def two_receiver_scenarios(config: MonteCarloConfig,
                           seed: SeedLike = None
                           ) -> Tuple[np.ndarray, Dict[str, float]]:
    """Gain samples plus the Fig. 5 case mix of the sampled topologies.

    Returns ``(gains, case_fractions)`` where the fractions are keyed
    by the case letter ('a'..'d') plus ``'feasible'`` for the share of
    topologies where SIC was actually usable.
    """
    rng = make_rng(seed)
    channel = config.channel()
    model = config.propagation()
    gains = np.empty(config.n_samples)
    counts: Dict[str, int] = {"a": 0, "b": 0, "c": 0, "d": 0,
                              "feasible": 0}
    for k in range(config.n_samples):
        topo = random_pair_topology(config.range_m, rng)
        rss = _pair_rss(topo, model, config.tx_power_w)
        scenario = evaluate_pair_scenario(channel, config.packet_bits, rss)
        gains[k] = scenario.gain
        counts[scenario.case.value] += 1
        counts["feasible"] += scenario.sic_feasible
    fractions = {key: value / config.n_samples
                 for key, value in counts.items()}
    return gains, fractions


def _pair_rss(topo, model: LogDistancePathLoss, tx_power_w: float) -> PairRss:
    """The four S_j^i values of a two-pair topology."""
    def rss(tx, rx) -> float:
        return float(model.received_power(tx_power_w, tx.distance_to(rx)))
    return PairRss(
        s11=rss(topo.t1, topo.r1),
        s12=rss(topo.t2, topo.r1),
        s21=rss(topo.t1, topo.r2),
        s22=rss(topo.t2, topo.r2),
    )


def one_receiver_technique_gains(config: MonteCarloConfig,
                                 seed: SeedLike = None,
                                 max_fast_packets: int = 8,
                                 ) -> Dict[str, np.ndarray]:
    """Fig. 11a: per-technique gain samples, two clients to one AP.

    Returns gain arrays keyed by technique: plain ``sic``,
    ``power_control``, ``multirate``, ``packing``.  Every gain is
    clipped below at 1 (the MAC never uses a losing strategy).
    """
    rng = make_rng(seed)
    channel = config.channel()
    model = config.propagation()
    out = {name: np.empty(config.n_samples)
           for name in ("sic", "power_control", "multirate", "packing")}
    for k in range(config.n_samples):
        topo = random_uplink_clients(2, config.range_m, rng)
        s1, s2 = (
            float(model.received_power(config.tx_power_w,
                                       c.distance_to(topo.ap)))
            for c in topo.clients
        )
        serial = float(z_serial_same_receiver(channel, config.packet_bits,
                                              s1, s2))
        sic = float(z_sic_same_receiver(channel, config.packet_bits, s1, s2))
        out["sic"][k] = max(1.0, serial / sic)
        pc = power_controlled_pair_airtime(channel, config.packet_bits,
                                           s1, s2)
        out["power_control"][k] = max(1.0, serial / pc.airtime_s)
        mr = multirate_pair_airtime(channel, config.packet_bits, s1, s2)
        out["multirate"][k] = max(1.0, serial / mr.airtime_s)
        out["packing"][k] = one_receiver_packing_gain(
            channel, config.packet_bits, s1, s2, max_fast_packets)
    return out


def one_receiver_packing_gain(channel: Channel, packet_bits: float,
                               s1: float, s2: float,
                               max_fast_packets: int) -> float:
    """Packing gain at a common SIC receiver.

    During the overlap the stronger signal runs interference-limited and
    the weaker rides clean; whichever transmission is slower becomes the
    "slow" link and the other packs extra packets underneath it.
    """
    strong, weak = max(s1, s2), min(s1, s2)
    b, n0 = channel.bandwidth_hz, channel.noise_w
    from repro.phy.shannon import airtime, shannon_rate
    t_strong = float(airtime(packet_bits, shannon_rate(b, strong, weak, n0)))
    t_weak = float(airtime(packet_bits, shannon_rate(b, weak, 0.0, n0)))
    if t_strong >= t_weak:
        packed = pack_pair_links(channel, packet_bits,
                                 slow_rss_w=strong, slow_interference_w=weak,
                                 fast_rss_w=weak, fast_interference_w=0.0,
                                 sic_feasible=True,
                                 max_fast_packets=max_fast_packets)
    else:
        packed = pack_pair_links(channel, packet_bits,
                                 slow_rss_w=weak, slow_interference_w=0.0,
                                 fast_rss_w=strong, fast_interference_w=weak,
                                 sic_feasible=True,
                                 max_fast_packets=max_fast_packets)
    return packed.gain


def two_receiver_technique_gains(config: MonteCarloConfig,
                                 seed: SeedLike = None,
                                 max_fast_packets: int = 8,
                                 ) -> Dict[str, np.ndarray]:
    """Fig. 11b: gain samples for two transmitter-receiver pairs.

    Only plain SIC and SIC + packet packing apply here — the paper
    notes multirate packetization "is not possible in a two transmitter,
    two receiver scenario", and power control across independent links
    is not considered.
    """
    rng = make_rng(seed)
    channel = config.channel()
    model = config.propagation()
    out = {name: np.empty(config.n_samples) for name in ("sic", "packing")}
    for k in range(config.n_samples):
        topo = random_pair_topology(config.range_m, rng)
        rss = _pair_rss(topo, model, config.tx_power_w)
        scenario = evaluate_pair_scenario(channel, config.packet_bits, rss)
        out["sic"][k] = scenario.gain
        out["packing"][k] = two_receiver_packing_gain(
            channel, config.packet_bits, rss, scenario, max_fast_packets)
    return out


def two_receiver_packing_gain(channel: Channel, packet_bits: float,
                              rss: PairRss, scenario,
                              max_fast_packets: int = 8) -> float:
    """Packing gain for a two-pair scenario (ideal continuous rates).

    Mirrors :func:`repro.sic.discrete.discrete_packing_gain`: the
    transmitter whose signal the SIC receiver must cancel may lower its
    rate to whatever *both* receivers can decode, and its partner packs
    several packets under the resulting long airtime.  Clipped below at
    the plain-SIC gain (the MAC never packs when it loses).
    """
    from repro.phy.shannon import airtime, shannon_rate
    from repro.sic.scenarios import PairCase

    b, n0 = channel.bandwidth_hz, channel.noise_w
    if scenario.case is PairCase.SIC_AT_R2:
        # T1's rate must be decodable at R1 (capture through T2's
        # interference) and at R2 (before cancellation).
        sinr_1 = min(rss.s11 / (rss.s12 + n0), rss.s21 / (rss.s22 + n0))
        rate_1 = shannon_rate(b, sinr_1 * n0, 0.0, n0)
        rate_2 = shannon_rate(b, rss.s22, 0.0, n0)
    elif scenario.case is PairCase.SIC_AT_R1:
        sinr_2 = min(rss.s22 / (rss.s21 + n0), rss.s12 / (rss.s11 + n0))
        rate_2 = shannon_rate(b, sinr_2 * n0, 0.0, n0)
        rate_1 = shannon_rate(b, rss.s11, 0.0, n0)
    elif scenario.case is PairCase.SIC_AT_BOTH:
        sinr_1 = min(rss.s11 / n0, rss.s21 / (rss.s22 + n0))
        sinr_2 = min(rss.s22 / n0, rss.s12 / (rss.s11 + n0))
        rate_1 = shannon_rate(b, sinr_1 * n0, 0.0, n0)
        rate_2 = shannon_rate(b, sinr_2 * n0, 0.0, n0)
    else:
        return scenario.gain  # both capture: no SIC involved
    if rate_1 <= 0.0 or rate_2 <= 0.0:
        return scenario.gain
    t1 = float(airtime(packet_bits, rate_1))
    t2 = float(airtime(packet_bits, rate_2))
    t1_clean = float(airtime(packet_bits, shannon_rate(b, rss.s11, 0.0, n0)))
    t2_clean = float(airtime(packet_bits, shannon_rate(b, rss.s22, 0.0, n0)))
    (t_slow, slow_clean), (t_fast, fast_clean) = sorted(
        [(t1, t1_clean), (t2, t2_clean)], reverse=True)
    k = max(1, min(max_fast_packets, int(t_slow // t_fast)))
    packed_time = max(t_slow, k * t_fast)
    serial = slow_clean + k * fast_clean
    if packed_time <= 0.0:
        return scenario.gain
    return max(scenario.gain, 1.0, serial / packed_time)


def _legacy_two_receiver_packing_gain(channel: Channel, packet_bits: float,
                                      rss: PairRss, scenario,
                                      max_fast_packets: int) -> float:
    """Packing gain restricted to strictly SIC-feasible scenarios.

    Kept for the ablation bench: contrasts the rate-constrained packing
    above with packing that cannot lower the cancelled signal's rate.
    """
    from repro.sic.scenarios import PairCase
    if not scenario.sic_feasible:
        return scenario.gain
    if scenario.case is PairCase.SIC_AT_R2:
        slow = (rss.s11, rss.s12)   # T1 interference-limited at R1
        fast = (rss.s22, 0.0)       # T2 clean after SIC at R2
    elif scenario.case is PairCase.SIC_AT_R1:
        slow = (rss.s22, rss.s21)
        fast = (rss.s11, 0.0)
    else:  # SIC at both: both clean; pack under the slower one
        if rss.s11 <= rss.s22:
            slow, fast = (rss.s11, 0.0), (rss.s22, 0.0)
        else:
            slow, fast = (rss.s22, 0.0), (rss.s11, 0.0)
    packed = pack_pair_links(channel, packet_bits,
                             slow_rss_w=slow[0], slow_interference_w=slow[1],
                             fast_rss_w=fast[0], fast_interference_w=fast[1],
                             sic_feasible=True,
                             max_fast_packets=max_fast_packets)
    return max(scenario.gain, packed.gain)
