"""Monte-Carlo engines behind Figs. 6 and 11.

Each engine draws random building-block topologies, evaluates the gain
metric per draw, and returns the raw gain samples (the figure modules
turn those into CDFs and summary rows).

The placement recipe follows Section 3.2: transmitters a fixed *range*
apart, receivers uniform within range of their transmitter, RSS from
log-distance path loss with exponent alpha (default 4), gain computed
as ``Z_{-SIC} / Z_{+SIC}`` over 10 000 draws.

Two implementations coexist:

* the **scalar reference** (``*_scalar`` functions) evaluates one draw
  at a time through the scalar building blocks
  (:func:`repro.topology.generators.random_pair_topology`,
  :func:`repro.sic.scenarios.evaluate_pair_scenario`, ...); it is the
  executable specification the tests compare against;
* the **batched engines** (the public names) sample whole chunks of
  topologies as NumPy arrays and push them through the vectorised
  building blocks — 10-100x faster at paper scale, same draws.

Batched engines run the sweep in chunks.  With the default
``chunk_size=None`` the whole run is one chunk drawn straight from the
caller's seed, so results match the scalar reference draw for draw.
With an explicit ``chunk_size`` each chunk gets its own child seed
spawned deterministically from the caller's seed
(`SeedSequence.spawn`), and ``n_workers > 1`` evaluates chunks in a
process pool.  Chunking — and therefore every result — depends only on
``(seed, n_samples, chunk_size)``, never on ``n_workers``, so a
parallel run is bit-identical to a serial one.

Results are memoised through :class:`repro.util.cache.ResultCache`
(set ``REPRO_CACHE_DIR`` or pass an explicit cache) keyed by
``(engine, config, seed, chunking, code version)``.  Bump
:data:`MONTECARLO_CODE_VERSION` whenever the sampled distributions or
the gain arithmetic change.

Chunked runs execute under the *supervised executor*
(:mod:`repro.experiments.runner`): failed chunks are retried, broken
process pools are rebuilt (and eventually degraded to in-process
execution with a warning), and — when ``REPRO_CHECKPOINT_DIR`` or an
explicit :class:`~repro.experiments.runner.ExecutionPolicy` names a
checkpoint directory — completed chunks persist so interrupted sweeps
resume by recomputing only what is missing.  None of this changes
results; see ``docs/resilience.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.phy.noise import thermal_noise_watts
from repro.phy.pathloss import LogDistancePathLoss, rss_from_distances
from repro.phy.shannon import Channel, airtime, shannon_rate
from repro.sic.scenarios import (
    CASE_ORDER,
    PairCase,
    PairRss,
    PairScenario,
    PairScenarioBatch,
    evaluate_pair_scenario,
    evaluate_pair_scenarios_batch,
)
from repro.techniques.multirate import (
    multirate_pair_airtime,
    multirate_pair_airtime_batch,
)
from repro.techniques.packing import pack_pair_gain_batch, pack_pair_links
from repro.techniques.power_control import (
    power_controlled_pair_airtime,
    power_controlled_pair_airtime_batch,
)
from repro.experiments.runner import (
    ExecutionPolicy,
    chunk_seeds,
    chunk_sizes,
    run_chunked,
)
from repro.sic.airtime import z_serial_same_receiver, z_sic_same_receiver
from repro.topology.generators import (
    PairTopology,
    PairTopologyBatch,
    random_pair_topologies,
    random_pair_topology,
    random_uplink_client_batch,
    random_uplink_clients,
)
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.util.cache import ResultCache
from repro.util.rng import SeedLike, make_rng

#: Cache-invalidation tag for the batched engines: bump on any change
#: to the sampling recipe or the gain arithmetic.
MONTECARLO_CODE_VERSION = 1

CacheLike = Optional[ResultCache]
PolicyLike = Optional[ExecutionPolicy]

__all__ = [
    "CacheLike",
    "ExecutionPolicy",
    "MONTECARLO_CODE_VERSION",
    "MonteCarloConfig",
    "PolicyLike",
    "chunk_seeds",
    "chunk_sizes",
    "one_receiver_packing_gain",
    "one_receiver_technique_gains",
    "one_receiver_technique_gains_scalar",
    "two_receiver_gains",
    "two_receiver_packing_gain",
    "two_receiver_packing_gain_batch",
    "two_receiver_scenarios",
    "two_receiver_scenarios_scalar",
    "two_receiver_technique_gains",
    "two_receiver_technique_gains_scalar",
]


@dataclass(frozen=True)
class MonteCarloConfig:
    """Shared Monte-Carlo parameters (paper defaults)."""

    n_samples: int = 10_000
    range_m: float = 20.0
    pathloss_exponent: float = 4.0
    tx_power_w: float = DEFAULT_TX_POWER_W
    bandwidth_hz: float = 20e6
    packet_bits: float = 12_000.0

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ValueError("need at least one sample")

    def channel(self) -> Channel:
        return Channel(bandwidth_hz=self.bandwidth_hz,
                       noise_w=thermal_noise_watts(self.bandwidth_hz))

    def propagation(self) -> LogDistancePathLoss:
        return LogDistancePathLoss(exponent=self.pathloss_exponent)


# ---------------------------------------------------------------------------
# Chunked execution substrate (supervised; see repro.experiments.runner)
# ---------------------------------------------------------------------------

def _run_chunked(engine, chunk_fn, config, seed, n_workers, chunk_size,
                 cache, kwargs, policy=None):
    """Run one batched engine under the supervised executor.

    Thin wrapper binding this module's :data:`MONTECARLO_CODE_VERSION`
    into :func:`repro.experiments.runner.run_chunked`; kept so the
    engines (and their tests) have a single local seam.
    """
    return run_chunked(engine, chunk_fn, config, seed,
                       code_version=MONTECARLO_CODE_VERSION,
                       n_workers=n_workers, chunk_size=chunk_size,
                       cache=cache, kwargs=kwargs, policy=policy)


# ---------------------------------------------------------------------------
# Fig. 6 — two transmitter-receiver pairs
# ---------------------------------------------------------------------------

def two_receiver_gains(config: MonteCarloConfig,
                       seed: SeedLike = None, *,
                       n_workers: int = 1,
                       chunk_size: Optional[int] = None,
                       cache: CacheLike = None,
                       policy: PolicyLike = None) -> np.ndarray:
    """Fig. 6: SIC gain samples for random two-pair topologies."""
    gains, _ = two_receiver_scenarios(config, seed, n_workers=n_workers,
                                      chunk_size=chunk_size, cache=cache,
                                      policy=policy)
    return gains


def _two_receiver_scenarios_chunk(config: MonteCarloConfig, seed: SeedLike,
                                  n: int) -> Dict[str, np.ndarray]:
    """One chunk of the batched Fig. 6 sweep."""
    batch = _sample_pair_scenarios(config, seed, n)
    return {"gains": batch.gains,
            "case_codes": batch.case_codes,
            "sic_feasible": batch.sic_feasible}


def _sample_pair_scenarios(config: MonteCarloConfig, seed: SeedLike,
                           n: int) -> PairScenarioBatch:
    topologies = random_pair_topologies(n, config.range_m, make_rng(seed))
    s11, s12, s21, s22 = _pair_rss_batch(topologies, config)
    return evaluate_pair_scenarios_batch(config.channel(),
                                         config.packet_bits,
                                         s11, s12, s21, s22)


def _pair_rss_batch(topologies: PairTopologyBatch, config: MonteCarloConfig
                    ) -> Tuple[np.ndarray, np.ndarray,
                               np.ndarray, np.ndarray]:
    """The four S_j^k arrays of a pair-topology batch."""
    model = config.propagation()
    d11, d12, d21, d22 = topologies.link_distances()
    s11, s12, s21, s22 = (rss_from_distances(model, config.tx_power_w, d)
                          for d in (d11, d12, d21, d22))
    return s11, s12, s21, s22


def two_receiver_scenarios(config: MonteCarloConfig,
                           seed: SeedLike = None, *,
                           n_workers: int = 1,
                           chunk_size: Optional[int] = None,
                           cache: CacheLike = None,
                           policy: PolicyLike = None
                           ) -> Tuple[np.ndarray, Dict[str, float]]:
    """Gain samples plus the Fig. 5 case mix of the sampled topologies.

    Returns ``(gains, case_fractions)`` where the fractions are keyed
    by the case letter ('a'..'d') plus ``'feasible'`` for the share of
    topologies where SIC was actually usable.

    Vectorised engine; see the module docstring for the chunking,
    ``n_workers``, ``cache`` and ``policy`` semantics.  The per-draw
    reference is :func:`two_receiver_scenarios_scalar`.
    """
    raw = _run_chunked("two_receiver_scenarios",
                       _two_receiver_scenarios_chunk,
                       config, seed, n_workers, chunk_size, cache, {},
                       policy)
    codes = raw["case_codes"].astype(np.uint8)
    feasible = raw["sic_feasible"].astype(bool)
    counts = np.bincount(codes, minlength=len(CASE_ORDER))
    fractions = {case.value: int(count) / config.n_samples
                 for case, count in zip(CASE_ORDER, counts)}
    fractions["feasible"] = (int(np.count_nonzero(feasible))
                             / config.n_samples)
    return raw["gains"], fractions


def two_receiver_scenarios_scalar(config: MonteCarloConfig,
                                  seed: SeedLike = None
                                  ) -> Tuple[np.ndarray, Dict[str, float]]:
    """Scalar reference implementation of :func:`two_receiver_scenarios`.

    One topology per loop iteration through the scalar building blocks;
    kept as the executable specification for the equivalence tests and
    the speedup benchmark.
    """
    rng = make_rng(seed)
    channel = config.channel()
    model = config.propagation()
    gains = np.empty(config.n_samples)
    counts: Dict[str, int] = {"a": 0, "b": 0, "c": 0, "d": 0,
                              "feasible": 0}
    for k in range(config.n_samples):
        topo = random_pair_topology(config.range_m, rng)
        rss = _pair_rss(topo, model, config.tx_power_w)
        scenario = evaluate_pair_scenario(channel, config.packet_bits, rss)
        gains[k] = scenario.gain
        counts[scenario.case.value] += 1
        counts["feasible"] += scenario.sic_feasible
    fractions = {key: value / config.n_samples
                 for key, value in counts.items()}
    return gains, fractions


def _pair_rss(topo: PairTopology, model: LogDistancePathLoss,
              tx_power_w: float) -> PairRss:
    """The four S_j^i values of a two-pair topology."""
    def rss(tx, rx) -> float:
        return float(model.received_power(tx_power_w, tx.distance_to(rx)))
    return PairRss(
        s11=rss(topo.t1, topo.r1),
        s12=rss(topo.t2, topo.r1),
        s21=rss(topo.t1, topo.r2),
        s22=rss(topo.t2, topo.r2),
    )


# ---------------------------------------------------------------------------
# Fig. 11a — two clients to one AP, per-technique gains
# ---------------------------------------------------------------------------

def _one_receiver_chunk(config: MonteCarloConfig, seed: SeedLike, n: int,
                        max_fast_packets: int) -> Dict[str, np.ndarray]:
    """One chunk of the batched Fig. 11a sweep."""
    channel = config.channel()
    model = config.propagation()
    clients = random_uplink_client_batch(n, 2, config.range_m,
                                         make_rng(seed))
    rss = rss_from_distances(model, config.tx_power_w,
                             clients.ap_distances())
    s1, s2 = rss[:, 0], rss[:, 1]
    serial = np.asarray(z_serial_same_receiver(channel, config.packet_bits,
                                               s1, s2), dtype=float)
    sic = np.asarray(z_sic_same_receiver(channel, config.packet_bits,
                                         s1, s2), dtype=float)
    pc = power_controlled_pair_airtime_batch(channel, config.packet_bits,
                                             s1, s2)
    mr = multirate_pair_airtime_batch(channel, config.packet_bits, s1, s2)
    return {
        "sic": np.maximum(1.0, serial / sic),
        "power_control": np.maximum(1.0, serial / pc),
        "multirate": np.maximum(1.0, serial / mr),
        "packing": _one_receiver_packing_gain_batch(
            channel, config.packet_bits, s1, s2, max_fast_packets),
    }


def _one_receiver_packing_gain_batch(channel: Channel, packet_bits: float,
                                     s1: np.ndarray, s2: np.ndarray,
                                     max_fast_packets: int) -> np.ndarray:
    """Vectorised :func:`one_receiver_packing_gain`."""
    strong = np.maximum(s1, s2)
    weak = np.minimum(s1, s2)
    b, n0 = channel.bandwidth_hz, channel.noise_w
    t_strong = np.asarray(
        airtime(packet_bits, shannon_rate(b, strong, weak, n0)), dtype=float)
    t_weak = np.asarray(
        airtime(packet_bits, shannon_rate(b, weak, 0.0, n0)), dtype=float)
    strong_is_slow = t_strong >= t_weak
    return pack_pair_gain_batch(
        channel, packet_bits,
        slow_rss_w=np.where(strong_is_slow, strong, weak),
        slow_interference_w=np.where(strong_is_slow, weak, 0.0),
        fast_rss_w=np.where(strong_is_slow, weak, strong),
        fast_interference_w=np.where(strong_is_slow, 0.0, weak),
        max_fast_packets=max_fast_packets)


def one_receiver_technique_gains(config: MonteCarloConfig,
                                 seed: SeedLike = None,
                                 max_fast_packets: int = 8, *,
                                 n_workers: int = 1,
                                 chunk_size: Optional[int] = None,
                                 cache: CacheLike = None,
                                 policy: PolicyLike = None,
                                 ) -> Dict[str, np.ndarray]:
    """Fig. 11a: per-technique gain samples, two clients to one AP.

    Returns gain arrays keyed by technique: plain ``sic``,
    ``power_control``, ``multirate``, ``packing``.  Every gain is
    clipped below at 1 (the MAC never uses a losing strategy).

    Vectorised engine; the per-draw reference is
    :func:`one_receiver_technique_gains_scalar`.
    """
    return _run_chunked("one_receiver_technique_gains",
                        _one_receiver_chunk, config, seed, n_workers,
                        chunk_size, cache,
                        {"max_fast_packets": max_fast_packets}, policy)


def one_receiver_technique_gains_scalar(config: MonteCarloConfig,
                                        seed: SeedLike = None,
                                        max_fast_packets: int = 8,
                                        ) -> Dict[str, np.ndarray]:
    """Scalar reference implementation of
    :func:`one_receiver_technique_gains`."""
    rng = make_rng(seed)
    channel = config.channel()
    model = config.propagation()
    out = {name: np.empty(config.n_samples)
           for name in ("sic", "power_control", "multirate", "packing")}
    for k in range(config.n_samples):
        topo = random_uplink_clients(2, config.range_m, rng)
        s1, s2 = (
            float(model.received_power(config.tx_power_w,
                                       c.distance_to(topo.ap)))
            for c in topo.clients
        )
        serial = float(z_serial_same_receiver(channel, config.packet_bits,
                                              s1, s2))
        sic = float(z_sic_same_receiver(channel, config.packet_bits, s1, s2))
        out["sic"][k] = max(1.0, serial / sic)
        pc = power_controlled_pair_airtime(channel, config.packet_bits,
                                           s1, s2)
        out["power_control"][k] = max(1.0, serial / pc.airtime_s)
        mr = multirate_pair_airtime(channel, config.packet_bits, s1, s2)
        out["multirate"][k] = max(1.0, serial / mr.airtime_s)
        out["packing"][k] = one_receiver_packing_gain(
            channel, config.packet_bits, s1, s2, max_fast_packets)
    return out


def one_receiver_packing_gain(channel: Channel, packet_bits: float,
                               s1: float, s2: float,
                               max_fast_packets: int) -> float:
    """Packing gain at a common SIC receiver.

    During the overlap the stronger signal runs interference-limited and
    the weaker rides clean; whichever transmission is slower becomes the
    "slow" link and the other packs extra packets underneath it.
    """
    strong, weak = max(s1, s2), min(s1, s2)
    b, n0 = channel.bandwidth_hz, channel.noise_w
    t_strong = float(airtime(packet_bits, shannon_rate(b, strong, weak, n0)))
    t_weak = float(airtime(packet_bits, shannon_rate(b, weak, 0.0, n0)))
    if t_strong >= t_weak:
        packed = pack_pair_links(channel, packet_bits,
                                 slow_rss_w=strong, slow_interference_w=weak,
                                 fast_rss_w=weak, fast_interference_w=0.0,
                                 sic_feasible=True,
                                 max_fast_packets=max_fast_packets)
    else:
        packed = pack_pair_links(channel, packet_bits,
                                 slow_rss_w=weak, slow_interference_w=0.0,
                                 fast_rss_w=strong, fast_interference_w=weak,
                                 sic_feasible=True,
                                 max_fast_packets=max_fast_packets)
    return packed.gain


# ---------------------------------------------------------------------------
# Fig. 11b — two transmitter-receiver pairs, per-technique gains
# ---------------------------------------------------------------------------

def _two_receiver_technique_chunk(config: MonteCarloConfig, seed: SeedLike,
                                  n: int, max_fast_packets: int
                                  ) -> Dict[str, np.ndarray]:
    """One chunk of the batched Fig. 11b sweep."""
    topologies = random_pair_topologies(n, config.range_m, make_rng(seed))
    s11, s12, s21, s22 = _pair_rss_batch(topologies, config)
    channel = config.channel()
    scenarios = evaluate_pair_scenarios_batch(channel, config.packet_bits,
                                              s11, s12, s21, s22)
    return {
        "sic": scenarios.gains,
        "packing": two_receiver_packing_gain_batch(
            channel, config.packet_bits, s11, s12, s21, s22, scenarios,
            max_fast_packets),
    }


def two_receiver_technique_gains(config: MonteCarloConfig,
                                 seed: SeedLike = None,
                                 max_fast_packets: int = 8, *,
                                 n_workers: int = 1,
                                 chunk_size: Optional[int] = None,
                                 cache: CacheLike = None,
                                 policy: PolicyLike = None,
                                 ) -> Dict[str, np.ndarray]:
    """Fig. 11b: gain samples for two transmitter-receiver pairs.

    Only plain SIC and SIC + packet packing apply here — the paper
    notes multirate packetization "is not possible in a two transmitter,
    two receiver scenario", and power control across independent links
    is not considered.

    Vectorised engine; the per-draw reference is
    :func:`two_receiver_technique_gains_scalar`.
    """
    return _run_chunked("two_receiver_technique_gains",
                        _two_receiver_technique_chunk, config, seed,
                        n_workers, chunk_size, cache,
                        {"max_fast_packets": max_fast_packets}, policy)


def two_receiver_technique_gains_scalar(config: MonteCarloConfig,
                                        seed: SeedLike = None,
                                        max_fast_packets: int = 8,
                                        ) -> Dict[str, np.ndarray]:
    """Scalar reference implementation of
    :func:`two_receiver_technique_gains`."""
    rng = make_rng(seed)
    channel = config.channel()
    model = config.propagation()
    out = {name: np.empty(config.n_samples) for name in ("sic", "packing")}
    for k in range(config.n_samples):
        topo = random_pair_topology(config.range_m, rng)
        rss = _pair_rss(topo, model, config.tx_power_w)
        scenario = evaluate_pair_scenario(channel, config.packet_bits, rss)
        out["sic"][k] = scenario.gain
        out["packing"][k] = two_receiver_packing_gain(
            channel, config.packet_bits, rss, scenario, max_fast_packets)
    return out


def two_receiver_packing_gain(channel: Channel, packet_bits: float,
                              rss: PairRss, scenario: PairScenario,
                              max_fast_packets: int = 8) -> float:
    """Packing gain for a two-pair scenario (ideal continuous rates).

    Mirrors :func:`repro.sic.discrete.discrete_packing_gain`: the
    transmitter whose signal the SIC receiver must cancel may lower its
    rate to whatever *both* receivers can decode, and its partner packs
    several packets under the resulting long airtime.  Clipped below at
    the plain-SIC gain (the MAC never packs when it loses).
    """
    b, n0 = channel.bandwidth_hz, channel.noise_w
    if scenario.case is PairCase.SIC_AT_R2:
        # T1's rate must be decodable at R1 (capture through T2's
        # interference) and at R2 (before cancellation).
        sinr_1 = min(rss.s11 / (rss.s12 + n0), rss.s21 / (rss.s22 + n0))
        rate_1 = shannon_rate(b, sinr_1 * n0, 0.0, n0)
        rate_2 = shannon_rate(b, rss.s22, 0.0, n0)
    elif scenario.case is PairCase.SIC_AT_R1:
        sinr_2 = min(rss.s22 / (rss.s21 + n0), rss.s12 / (rss.s11 + n0))
        rate_2 = shannon_rate(b, sinr_2 * n0, 0.0, n0)
        rate_1 = shannon_rate(b, rss.s11, 0.0, n0)
    elif scenario.case is PairCase.SIC_AT_BOTH:
        sinr_1 = min(rss.s11 / n0, rss.s21 / (rss.s22 + n0))
        sinr_2 = min(rss.s22 / n0, rss.s12 / (rss.s11 + n0))
        rate_1 = shannon_rate(b, sinr_1 * n0, 0.0, n0)
        rate_2 = shannon_rate(b, sinr_2 * n0, 0.0, n0)
    else:
        return scenario.gain  # both capture: no SIC involved
    if rate_1 <= 0.0 or rate_2 <= 0.0:
        return scenario.gain
    t1 = float(airtime(packet_bits, rate_1))
    t2 = float(airtime(packet_bits, rate_2))
    t1_clean = float(airtime(packet_bits, shannon_rate(b, rss.s11, 0.0, n0)))
    t2_clean = float(airtime(packet_bits, shannon_rate(b, rss.s22, 0.0, n0)))
    (t_slow, slow_clean), (t_fast, fast_clean) = sorted(
        [(t1, t1_clean), (t2, t2_clean)], reverse=True)
    k = max(1, min(max_fast_packets, int(t_slow // t_fast)))
    packed_time = max(t_slow, k * t_fast)
    serial = slow_clean + k * fast_clean
    if packed_time <= 0.0:
        return scenario.gain
    return max(scenario.gain, 1.0, serial / packed_time)


def two_receiver_packing_gain_batch(channel: Channel, packet_bits: float,
                                    s11: np.ndarray, s12: np.ndarray,
                                    s21: np.ndarray, s22: np.ndarray,
                                    scenarios: PairScenarioBatch,
                                    max_fast_packets: int = 8) -> np.ndarray:
    """Vectorised :func:`two_receiver_packing_gain` over an RSS batch.

    Element ``k`` equals the scalar function on
    ``PairRss(s11[k], s12[k], s21[k], s22[k])`` with the matching
    scenario.
    """
    b, n0 = channel.bandwidth_hz, channel.noise_w
    codes = scenarios.case_codes
    sic_gain = scenarios.gains

    # Constrained rate of the cancelled transmitter, per case (the min
    # over both receivers' decodable SINRs), expressed through the same
    # ``shannon_rate(b, sinr * n0, 0, n0)`` round-trip as the scalar.
    sinr_1_b = np.minimum(s11 / (s12 + n0), s21 / (s22 + n0))
    sinr_2_c = np.minimum(s22 / (s21 + n0), s12 / (s11 + n0))
    sinr_1_d = np.minimum(s11 / n0, s21 / (s22 + n0))
    sinr_2_d = np.minimum(s22 / n0, s12 / (s11 + n0))
    rate_1_clean = np.asarray(shannon_rate(b, s11, 0.0, n0), dtype=float)
    rate_2_clean = np.asarray(shannon_rate(b, s22, 0.0, n0), dtype=float)
    rate_1 = np.select(
        [codes == 1, codes == 2],
        [np.asarray(shannon_rate(b, sinr_1_b * n0, 0.0, n0), dtype=float),
         rate_1_clean],
        default=np.asarray(shannon_rate(b, sinr_1_d * n0, 0.0, n0),
                           dtype=float))
    rate_2 = np.select(
        [codes == 1, codes == 2],
        [rate_2_clean,
         np.asarray(shannon_rate(b, sinr_2_c * n0, 0.0, n0), dtype=float)],
        default=np.asarray(shannon_rate(b, sinr_2_d * n0, 0.0, n0),
                           dtype=float))

    t1 = np.asarray(airtime(packet_bits, rate_1), dtype=float)
    t2 = np.asarray(airtime(packet_bits, rate_2), dtype=float)
    t1_clean = np.asarray(airtime(packet_bits, rate_1_clean), dtype=float)
    t2_clean = np.asarray(airtime(packet_bits, rate_2_clean), dtype=float)

    # Slow/fast assignment matches the scalar's lexicographic sort of
    # (airtime, clean airtime) pairs.
    one_is_slow = (t1 > t2) | ((t1 == t2) & (t1_clean >= t2_clean))
    t_slow = np.where(one_is_slow, t1, t2)
    slow_clean = np.where(one_is_slow, t1_clean, t2_clean)
    t_fast = np.where(one_is_slow, t2, t1)
    fast_clean = np.where(one_is_slow, t2_clean, t1_clean)

    with np.errstate(divide="ignore", invalid="ignore"):
        k = np.clip(np.floor_divide(t_slow, t_fast), 1, max_fast_packets)
    k = np.where(np.isfinite(k), k, 1.0)
    packed_time = np.maximum(t_slow, k * t_fast)
    serial = slow_clean + k * fast_clean
    safe_packed = np.where(packed_time > 0.0, packed_time, 1.0)
    packed_gain = np.maximum(sic_gain,
                             np.maximum(1.0, serial / safe_packed))

    not_applicable = ((codes == 0) | (rate_1 <= 0.0) | (rate_2 <= 0.0)
                      | (packed_time <= 0.0))
    return np.where(not_applicable, sic_gain, packed_gain)


def _legacy_two_receiver_packing_gain(channel: Channel, packet_bits: float,
                                      rss: PairRss, scenario: PairScenario,
                                      max_fast_packets: int) -> float:
    """Packing gain restricted to strictly SIC-feasible scenarios.

    Kept for the ablation bench: contrasts the rate-constrained packing
    above with packing that cannot lower the cancelled signal's rate.
    """
    if not scenario.sic_feasible:
        return scenario.gain
    if scenario.case is PairCase.SIC_AT_R2:
        slow = (rss.s11, rss.s12)   # T1 interference-limited at R1
        fast = (rss.s22, 0.0)       # T2 clean after SIC at R2
    elif scenario.case is PairCase.SIC_AT_R1:
        slow = (rss.s22, rss.s21)
        fast = (rss.s11, 0.0)
    else:  # SIC at both: both clean; pack under the slower one
        if rss.s11 <= rss.s22:
            slow, fast = (rss.s11, 0.0), (rss.s22, 0.0)
        else:
            slow, fast = (rss.s22, 0.0), (rss.s11, 0.0)
    packed = pack_pair_links(channel, packet_bits,
                             slow_rss_w=slow[0], slow_interference_w=slow[1],
                             fast_rss_w=fast[0], fast_interference_w=fast[1],
                             sic_feasible=True,
                             max_fast_packets=max_fast_packets)
    return max(scenario.gain, packed.gain)
