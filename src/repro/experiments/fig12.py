"""Fig. 12 / Section 6 — the scheduling-to-matching reduction itself.

Fig. 12 is a schematic, not a data plot; what is checkable is the
reduction's *behaviour*: the blossom-based scheduler finds the optimal
pairing (equal to brute force for small n), beats greedy and random
pairing, handles odd client counts through the dummy node, and scales
polynomially.  This module produces those numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel
from repro.scheduling.baselines import (
    brute_force_schedule,
    greedy_schedule,
    random_schedule,
    serial_schedule,
)
from repro.scheduling.scheduler import SicScheduler, UploadClient
from repro.techniques.pairing import TechniqueSet
from repro.util.rng import SeedLike, make_rng
from repro.util.timing import PhaseTimer
from repro.util.units import db_to_linear

DEFAULT_BANDWIDTH_HZ = 20e6


def random_clients(n: int, rng: np.random.Generator, snr_db_low: float = 3.0,
                   snr_db_high: float = 45.0,
                   noise_w: Optional[float] = None) -> List[UploadClient]:
    """Clients with log-uniform SNRs, the scheduler's natural workload."""
    if noise_w is None:
        noise_w = thermal_noise_watts(DEFAULT_BANDWIDTH_HZ)
    snrs_db = rng.uniform(snr_db_low, snr_db_high, size=n)
    return [UploadClient(f"C{i + 1}", float(db_to_linear(snr)) * noise_w)
            for i, snr in enumerate(snrs_db)]


@dataclass(frozen=True)
class SchedulerComparison:
    """Mean completion times of every scheduling policy, per n."""

    n_clients: int
    mean_times: Dict[str, float]
    mean_gains: Dict[str, float]


def compare_policies(n_clients: int, n_trials: int = 50,
                     techniques: TechniqueSet = TechniqueSet.ALL,
                     seed: SeedLike = 2010,
                     include_brute_force: Optional[bool] = None
                     ) -> SchedulerComparison:
    """Blossom vs greedy vs random vs serial (vs brute force if small)."""
    if include_brute_force is None:
        include_brute_force = n_clients <= 8
    rng = make_rng(seed)
    channel = Channel(bandwidth_hz=DEFAULT_BANDWIDTH_HZ,
                      noise_w=thermal_noise_watts(DEFAULT_BANDWIDTH_HZ))
    scheduler = SicScheduler(channel=channel, techniques=techniques)
    policies = {
        "blossom": lambda clients: scheduler.schedule(clients),
        "greedy": lambda clients: greedy_schedule(scheduler, clients),
        "random": lambda clients: random_schedule(scheduler, clients, rng),
        "serial": lambda clients: serial_schedule(scheduler, clients),
    }
    if include_brute_force:
        policies["brute_force"] = (
            lambda clients: brute_force_schedule(scheduler, clients))

    times = {name: [] for name in policies}
    gains = {name: [] for name in policies}
    for _ in range(n_trials):
        clients = random_clients(n_clients, rng, noise_w=channel.noise_w)
        serial_time = scheduler.serial_time(clients)
        for name, policy in policies.items():
            schedule = policy(clients)
            times[name].append(schedule.total_time_s)
            gains[name].append(serial_time / schedule.total_time_s)
    return SchedulerComparison(
        n_clients=n_clients,
        mean_times={k: float(np.mean(v)) for k, v in times.items()},
        mean_gains={k: float(np.mean(v)) for k, v in gains.items()},
    )


def runtime_scaling(sizes: Sequence[int] = (4, 8, 16, 32, 64),
                    seed: SeedLike = 2010
                    ) -> Dict[int, Dict[str, float]]:
    """Wall-clock seconds to schedule one instance of each size.

    Each entry holds the total plus the per-phase attribution from a
    :class:`~repro.util.timing.PhaseTimer` threaded through
    :meth:`~repro.scheduling.scheduler.SicScheduler.schedule` —
    ``cost_build`` (vectorised t_ij matrix), ``matching`` (blossom) and
    ``assembly`` (re-costing the chosen slots), so runtime regressions
    point at the phase that caused them.
    """
    rng = make_rng(seed)
    channel = Channel(bandwidth_hz=DEFAULT_BANDWIDTH_HZ,
                      noise_w=thermal_noise_watts(DEFAULT_BANDWIDTH_HZ))
    scheduler = SicScheduler(channel=channel, techniques=TechniqueSet.ALL)
    out: Dict[int, Dict[str, float]] = {}
    for n in sizes:
        clients = random_clients(n, rng, noise_w=channel.noise_w)
        timer = PhaseTimer()
        start = time.perf_counter()
        scheduler.schedule(clients, timer=timer)
        total = time.perf_counter() - start
        entry = {"total_s": total}
        for phase, seconds in timer.phases.items():
            entry[f"{phase}_s"] = seconds
        out[n] = entry
    return out


def compute(sizes: Sequence[int] = (3, 5, 8, 12, 20),
            n_trials: int = 30,
            seed: SeedLike = 2010) -> Dict[str, object]:
    """The full Fig. 12 behavioural study."""
    comparisons = [compare_policies(n, n_trials=n_trials, seed=seed)
                   for n in sizes]
    return {
        "comparisons": comparisons,
        "runtime": runtime_scaling(seed=seed),
    }
