"""Fig. 4 — heatmap of the same-receiver completion-time gain.

``Z_{-SIC} / Z_{+SIC}`` (Eq. 5 over Eq. 6) for two transmitters to one
receiver.  The claims to reproduce: moving away from the diagonal the
gain rises to a ridge and then falls again, and the ridge sits where
the resulting bitrates are equal — the stronger SNR (in dB) about twice
the weaker (``S1 ~= S2^2`` in linear terms).
"""

from __future__ import annotations

import numpy as np

from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel
from repro.sic.airtime import sic_gain_same_receiver
from repro.util.containers import GridResult
from repro.util.units import db_to_linear

DEFAULT_BANDWIDTH_HZ = 20e6
DEFAULT_PACKET_BITS = 12_000.0


def compute(snr_db_min: float = 0.5,
            snr_db_max: float = 50.0,
            n_points: int = 101,
            bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ,
            packet_bits: float = DEFAULT_PACKET_BITS) -> GridResult:
    """Completion-time gain grid over (SNR1, SNR2) in dB."""
    channel = Channel(bandwidth_hz=bandwidth_hz,
                      noise_w=thermal_noise_watts(bandwidth_hz))
    n0 = channel.noise_w
    snr_db = np.linspace(snr_db_min, snr_db_max, n_points)
    s = np.asarray(db_to_linear(snr_db), dtype=float) * n0
    gain = np.asarray(
        sic_gain_same_receiver(channel, packet_bits, s[None, :], s[:, None]),
        dtype=float)
    return GridResult(
        name="fig4-same-receiver-gain",
        x_label="SNR1 (dB)",
        y_label="SNR2 (dB)",
        x=snr_db,
        y=snr_db,
        values=gain,
        meta={"bandwidth_hz": bandwidth_hz, "packet_bits": packet_bits},
    )


def ridge_snr_ratio(grid: GridResult, min_snr_db: float = 6.0,
                    max_snr_db: float = 24.0) -> float:
    """Mean stronger/weaker dB ratio along the gain ridge (close to 2).

    The grid is symmetric in (SNR1, SNR2), so along a row the maximum
    may sit at ``x = 2y`` or at ``x = y/2`` (both are "stronger twice
    the weaker in dB"); we therefore report ``max(x/y, y/x)``.  Rows
    are restricted to a window where the ridge fits inside the grid.
    """
    ratios = []
    ridge_x = grid.ridge_along_y()
    for y_val, x_val in zip(grid.y, ridge_x):
        if min_snr_db <= y_val <= max_snr_db and x_val > 0 and y_val > 0:
            ratios.append(max(x_val / y_val, y_val / x_val))
    if not ratios:
        raise ValueError("no ridge rows inside the requested SNR window")
    return float(np.mean(ratios))
