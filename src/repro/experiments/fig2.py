"""Fig. 2 — aggregate capacity of two transmitters with SIC.

The paper's Fig. 2 (reproduced there from Tse & Viswanath) shows that
the two-transmitter SIC capacity exceeds either individual capacity and
equals that of a single transmitter with RSS ``S1 + S2``.  We sweep the
stronger SNR with the weaker fixed (and report both individual
capacities, the SIC sum, and the closed-form check).
"""

from __future__ import annotations

import numpy as np

from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel, shannon_rate
from repro.sic.capacity import capacity_with_sic, capacity_with_sic_closed_form
from repro.sic.regions import two_user_region
from repro.util.containers import SweepResult
from repro.util.units import db_to_linear

DEFAULT_BANDWIDTH_HZ = 20e6


def compute(snr2_db: float = 15.0,
            snr1_db_min: float = 0.0,
            snr1_db_max: float = 50.0,
            n_points: int = 101,
            bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ) -> SweepResult:
    """Sweep transmitter 1's SNR with transmitter 2 fixed at ``snr2_db``."""
    channel = Channel(bandwidth_hz=bandwidth_hz,
                      noise_w=thermal_noise_watts(bandwidth_hz))
    n0 = channel.noise_w
    snr1_db = np.linspace(snr1_db_min, snr1_db_max, n_points)
    s1 = np.asarray(db_to_linear(snr1_db), dtype=float) * n0
    s2 = float(db_to_linear(snr2_db)) * n0

    c1 = np.asarray(shannon_rate(bandwidth_hz, s1, 0.0, n0), dtype=float)
    c2 = np.full_like(c1, float(shannon_rate(bandwidth_hz, s2, 0.0, n0)))
    c_sic = np.asarray(capacity_with_sic(channel, s1, s2), dtype=float)
    c_closed = np.asarray(capacity_with_sic_closed_form(channel, s1, s2),
                          dtype=float)
    # Rate-region view: how much larger is the SIC pentagon than the
    # no-SIC time-sharing triangle at each operating point?
    area_advantage = np.array([
        two_user_region(channel, float(p1), s2).area_advantage
        for p1 in s1
    ])

    return SweepResult(
        name="fig2-sic-aggregate-capacity",
        x_label="SNR1 (dB)",
        x=snr1_db,
        series={
            "C1 alone (bps)": c1,
            "C2 alone (bps)": c2,
            "C with SIC (bps)": c_sic,
            "closed form (bps)": c_closed,
            "region area advantage": area_advantage,
        },
        meta={"snr2_db": snr2_db, "bandwidth_hz": bandwidth_hz},
    )
