"""Fig. 7 / Section 4 — SIC across wireless architectures.

Fig. 7 itself is a topology illustration; the checkable content is the
three per-architecture arguments of Section 4, computed by
:mod:`repro.architectures`:

* **7a (enterprise WLAN)** — nearest-AP association puts cross-AP
  pairs in the capture case, so SIC is not needed there;
* **7b (residential WLAN)** — the home-AP lock creates a minority of
  SIC opportunities that are worth almost nothing under ideal rates;
* **7c (mesh)** — long-short-long chains enable SIC at the middle
  node; equalised chains break it, and even the feasible overlaps are
  capped by the slow long hops.
"""

from __future__ import annotations

from typing import Dict, List

from repro.architectures.ewlan import evaluate_ewlan_cross_pairs
from repro.architectures.mesh import (
    feasibility_frontier,
    sweep_chain_geometries,
)
from repro.architectures.residential import evaluate_residential_rows
from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel
from repro.util.rng import SeedLike, spawn_rngs

DEFAULT_BANDWIDTH_HZ = 20e6


def compute(n_ewlan_grids: int = 100,
            n_residential_rows: int = 300,
            seed: SeedLike = 2010) -> Dict[str, object]:
    """All three architecture studies with a shared channel and seed."""
    channel = Channel(bandwidth_hz=DEFAULT_BANDWIDTH_HZ,
                      noise_w=thermal_noise_watts(DEFAULT_BANDWIDTH_HZ))
    rng_ewlan, rng_res = spawn_rngs(seed, 2)
    ewlan = evaluate_ewlan_cross_pairs(n_grids=n_ewlan_grids,
                                       channel=channel, seed=rng_ewlan)
    residential = evaluate_residential_rows(n_rows=n_residential_rows,
                                            channel=channel, seed=rng_res)
    mesh = sweep_chain_geometries(channel)
    return {
        "ewlan": ewlan,
        "residential": residential,
        "mesh": mesh,
        "mesh_frontier": feasibility_frontier(mesh),
    }


def render(result: Dict[str, object]) -> List[str]:
    """Printable report for the registry/CLI."""
    ewlan = result["ewlan"]
    residential = result["residential"]
    mesh = result["mesh"]
    frontier = result["mesh_frontier"]

    lines = ["[7a enterprise] cross-AP uplink pairs "
             f"({ewlan.n_pairs} sampled):",
             f"  capture (SIC not needed): {ewlan.capture_fraction:.1%}, "
             f"SIC feasible: {ewlan.sic_feasible_fraction:.1%}, "
             f"mean gain: {ewlan.mean_gain:.4f}x"]
    lines.append(f"[7b residential] cross-home downlink pairs "
                 f"({residential.n_pairs} sampled):")
    summary = residential.gain_summary
    lines.append(
        f"  SIC feasible: {residential.sic_feasible_fraction:.1%}, "
        f"no-gain: {summary['frac_no_gain']:.1%}, "
        f"max gain: {summary['max']:.3f}x")
    feasible = [a for a in mesh if a.sic_feasible]
    lines.append(f"[7c mesh] chain geometries: {len(feasible)}/"
                 f"{len(mesh)} admit SIC at the middle node")
    if feasible:
        best = max(feasible, key=lambda a: a.gain)
        lines.append(f"  best overlap gain: {best.gain:.2f}x at "
                     f"(long {best.long_hop_m:.0f} m, short "
                     f"{best.short_hop_m:.0f} m)")
    lines.append("  feasibility frontier: " + ", ".join(
        f"long {long_m:.0f} m -> short <= "
        + (f"{limit:.0f} m" if limit is not None else "never")
        for long_m, limit in sorted(frontier.items())))
    return lines
