"""Fig. 7 / Section 4 — SIC across wireless architectures.

Fig. 7 itself is a topology illustration; the checkable content is the
three per-architecture arguments of Section 4, computed by
:mod:`repro.architectures`:

* **7a (enterprise WLAN)** — nearest-AP association puts cross-AP
  pairs in the capture case, so SIC is not needed there;
* **7b (residential WLAN)** — the home-AP lock creates a minority of
  SIC opportunities that are worth almost nothing under ideal rates;
* **7c (mesh)** — long-short-long chains enable SIC at the middle
  node; equalised chains break it, and even the feasible overlaps are
  capped by the slow long hops.

:func:`compute` runs the batched architecture engines under the
supervised runner (workers, checkpoint/resume, result cache);
:func:`compute_scalar` freezes the original scalar pipeline as the
golden reference — bit-identical output for any seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.architectures.ewlan import (
    evaluate_ewlan_cross_pairs,
    evaluate_ewlan_cross_pairs_scalar,
)
from repro.architectures.mesh import (
    feasibility_frontier,
    sweep_chain_geometries,
    sweep_chain_geometries_scalar,
)
from repro.architectures.residential import (
    evaluate_residential_rows,
    evaluate_residential_rows_scalar,
)
from repro.experiments.runner import ExecutionPolicy
from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel
from repro.util.cache import ResultCache
from repro.util.rng import SeedLike, spawn_rngs, spawn_seed_sequences
from repro.util.timing import PhaseTimer

DEFAULT_BANDWIDTH_HZ = 20e6


def compute_scalar(n_ewlan_grids: int = 100,
                   n_residential_rows: int = 300,
                   seed: SeedLike = 2010) -> Dict[str, object]:
    """Frozen scalar reference: the original per-pair pipeline.

    Golden reference and benchmark baseline for the batched
    :func:`compute` (PR-1 convention).
    """
    channel = Channel(bandwidth_hz=DEFAULT_BANDWIDTH_HZ,
                      noise_w=thermal_noise_watts(DEFAULT_BANDWIDTH_HZ))
    rng_ewlan, rng_res = spawn_rngs(seed, 2)
    ewlan = evaluate_ewlan_cross_pairs_scalar(n_grids=n_ewlan_grids,
                                              channel=channel,
                                              seed=rng_ewlan)
    residential = evaluate_residential_rows_scalar(
        n_rows=n_residential_rows, channel=channel, seed=rng_res)
    mesh = sweep_chain_geometries_scalar(channel)
    return {
        "ewlan": ewlan,
        "residential": residential,
        "mesh": mesh,
        "mesh_frontier": feasibility_frontier(mesh),
    }


def compute(n_ewlan_grids: int = 100,
            n_residential_rows: int = 300,
            seed: SeedLike = 2010,
            *,
            n_workers: int = 1,
            chunk_size: Optional[int] = None,
            cache: Optional[ResultCache] = None,
            policy: Optional[ExecutionPolicy] = None,
            timer: Optional[PhaseTimer] = None) -> Dict[str, object]:
    """All three architecture studies with a shared channel and seed.

    Batched fast path, bit-identical to :func:`compute_scalar`.  The
    seed is split with ``spawn_seed_sequences`` (stream-identical to
    the scalar path's ``spawn_rngs``) so the children stay picklable
    and cache-tokenizable for the supervised runner.
    """
    channel = Channel(bandwidth_hz=DEFAULT_BANDWIDTH_HZ,
                      noise_w=thermal_noise_watts(DEFAULT_BANDWIDTH_HZ))
    seed_ewlan, seed_res = spawn_seed_sequences(seed, 2)
    ewlan = evaluate_ewlan_cross_pairs(n_grids=n_ewlan_grids,
                                       channel=channel, seed=seed_ewlan,
                                       n_workers=n_workers,
                                       chunk_size=chunk_size,
                                       cache=cache, policy=policy,
                                       timer=timer)
    residential = evaluate_residential_rows(n_rows=n_residential_rows,
                                            channel=channel,
                                            seed=seed_res,
                                            n_workers=n_workers,
                                            chunk_size=chunk_size,
                                            cache=cache, policy=policy,
                                            timer=timer)
    mesh = sweep_chain_geometries(channel, timer=timer)
    return {
        "ewlan": ewlan,
        "residential": residential,
        "mesh": mesh,
        "mesh_frontier": feasibility_frontier(mesh),
    }


def render(result: Dict[str, object]) -> List[str]:
    """Printable report for the registry/CLI."""
    ewlan = result["ewlan"]
    residential = result["residential"]
    mesh = result["mesh"]
    frontier = result["mesh_frontier"]

    lines = ["[7a enterprise] cross-AP uplink pairs "
             f"({ewlan.n_pairs} sampled):",
             f"  capture (SIC not needed): {ewlan.capture_fraction:.1%}, "
             f"SIC feasible: {ewlan.sic_feasible_fraction:.1%}, "
             f"mean gain: {ewlan.mean_gain:.4f}x",
             "  case mix: " + ", ".join(
                 f"{case.value}={fraction:.1%}"
                 for case, fraction in ewlan.case_fractions.items())]
    lines.append(f"[7b residential] cross-home downlink pairs "
                 f"({residential.n_pairs} sampled):")
    summary = residential.gain_summary
    lines.append(
        f"  SIC feasible: {residential.sic_feasible_fraction:.1%}, "
        f"no-gain: {summary['frac_no_gain']:.1%}, "
        f"max gain: {summary['max']:.3f}x")
    feasible = [a for a in mesh if a.sic_feasible]
    lines.append(f"[7c mesh] chain geometries: {len(feasible)}/"
                 f"{len(mesh)} admit SIC at the middle node")
    if feasible:
        best = max(feasible, key=lambda a: a.gain)
        lines.append(f"  best overlap gain: {best.gain:.2f}x at "
                     f"(long {best.long_hop_m:.0f} m, short "
                     f"{best.short_hop_m:.0f} m)")
    lines.append("  feasibility frontier: " + ", ".join(
        f"long {long_m:.0f} m -> short <= "
        + (f"{limit:.0f} m" if limit is not None else "never")
        for long_m, limit in sorted(frontier.items())))
    return lines
