"""Fig. 3 — heatmap of the relative capacity gain with SIC.

``C_{+SIC} / C_{-SIC}`` over a grid of the two received SNRs.  The
paper's observations to reproduce: the gain is always >= 1, it is "not
high in general", and it is largest when the RSSs are *smaller and
similar* (the bright region hugs the diagonal near the origin).
"""

from __future__ import annotations

import numpy as np

from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel
from repro.sic.capacity import capacity_gain
from repro.util.containers import GridResult
from repro.util.units import db_to_linear

DEFAULT_BANDWIDTH_HZ = 20e6


def compute(snr_db_min: float = 0.5,
            snr_db_max: float = 50.0,
            n_points: int = 101,
            bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ) -> GridResult:
    """Capacity-gain grid over (SNR1, SNR2) in dB."""
    channel = Channel(bandwidth_hz=bandwidth_hz,
                      noise_w=thermal_noise_watts(bandwidth_hz))
    n0 = channel.noise_w
    snr_db = np.linspace(snr_db_min, snr_db_max, n_points)
    s = np.asarray(db_to_linear(snr_db), dtype=float) * n0
    # Broadcast: rows = S2 (y axis), cols = S1 (x axis).
    gain = np.asarray(capacity_gain(channel, s[None, :], s[:, None]),
                      dtype=float)
    return GridResult(
        name="fig3-capacity-gain",
        x_label="SNR1 (dB)",
        y_label="SNR2 (dB)",
        x=snr_db,
        y=snr_db,
        values=gain,
        meta={"bandwidth_hz": bandwidth_hz},
    )
