"""Experiment modules: one per paper figure, plus the Monte-Carlo engine.

Use the registry to run them programmatically::

    from repro.experiments.registry import run_experiment
    for line in run_experiment("fig4", n_points=51).lines:
        print(line)

several figures at once over one shared worker pool::

    from repro.experiments.suite import run_suite
    suite = run_suite(["fig6", "fig13"])

or from the command line::

    python -m repro.experiments fig4
    python -m repro.experiments all --quick
    python -m repro.experiments claims
"""

from repro.experiments.montecarlo import (
    MonteCarloConfig,
    one_receiver_technique_gains,
    one_receiver_technique_gains_scalar,
    two_receiver_gains,
    two_receiver_scenarios,
    two_receiver_scenarios_scalar,
    two_receiver_technique_gains,
    two_receiver_technique_gains_scalar,
)

__all__ = [
    "MonteCarloConfig",
    "one_receiver_technique_gains",
    "one_receiver_technique_gains_scalar",
    "two_receiver_gains",
    "two_receiver_scenarios",
    "two_receiver_scenarios_scalar",
    "two_receiver_technique_gains",
    "two_receiver_technique_gains_scalar",
]
