"""Fig. 6 — Monte-Carlo CDF of SIC gain, two pairs, different receivers.

The paper fixes the transmitters one *range* apart, drops each receiver
uniformly within range of its transmitter, computes RSS with path-loss
exponent 4, and repeats 10 000+ times per range.  Headline claim: **no
gain from SIC in ~90 % of the cases** ("gains from lower path-loss
exponents and other ranges ... are even lower").

Runs on the batched Monte-Carlo engine: per-range seeds are spawned as
``SeedSequence`` children (stable content for the result cache), and
``n_workers``/``chunk_size``/``cache``/``policy`` pass straight through
to :func:`repro.experiments.montecarlo.two_receiver_scenarios` (the
``policy`` knob is the supervised executor's fault-tolerance bundle;
see ``docs/resilience.md``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.montecarlo import (
    CacheLike,
    MonteCarloConfig,
    PolicyLike,
    two_receiver_scenarios,
)
from repro.util.cdf import gain_cdf_summary
from repro.util.rng import SeedLike, spawn_seed_sequences
from repro.util.timing import PhaseTimer, maybe_phase

DEFAULT_RANGES_M = (10.0, 20.0, 40.0)


def compute(ranges_m: Sequence[float] = DEFAULT_RANGES_M,
            n_samples: int = 10_000,
            pathloss_exponent: float = 4.0,
            seed: SeedLike = 2010,
            n_workers: int = 1,
            chunk_size: Optional[int] = None,
            cache: CacheLike = None,
            policy: PolicyLike = None,
            timer: Optional[PhaseTimer] = None
            ) -> Dict[str, Dict[str, object]]:
    """Gain samples and summaries, one entry per transmitter range.

    Returns ``{range_label: {"gains": ndarray, "summary": {...}}}``.
    ``timer`` charges one ``range=...`` phase per sweep entry (the suite
    engine injects one to break suite wall time down per figure).
    """
    seeds = spawn_seed_sequences(seed, len(ranges_m))
    results: Dict[str, Dict[str, object]] = {}
    for range_m, range_seed in zip(ranges_m, seeds):
        config = MonteCarloConfig(n_samples=n_samples, range_m=range_m,
                                  pathloss_exponent=pathloss_exponent)
        with maybe_phase(timer, f"range={range_m:g}m"):
            gains, case_fractions = two_receiver_scenarios(
                config, range_seed, n_workers=n_workers,
                chunk_size=chunk_size, cache=cache, policy=policy)
        results[f"range={range_m:g}m"] = {
            "gains": gains,
            "summary": gain_cdf_summary(gains),
            "case_fractions": case_fractions,
        }
    return results


def fraction_no_gain(result: Dict[str, Dict[str, object]]) -> Dict[str, float]:
    """The paper's headline number per range: fraction with gain == 1."""
    return {label: entry["summary"]["frac_no_gain"]
            for label, entry in result.items()}
