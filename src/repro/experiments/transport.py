"""Zero-copy chunk transport over POSIX shared memory.

The supervised runner ships every completed chunk from a worker process
back to the supervisor as a dict of NumPy arrays.  By default that trip
is a pickle: the worker serialises each array into the result pipe and
the parent deserialises it — two full copies plus framing for payloads
that are nothing but raw ``float64`` buffers.  For the large fig13 /
fig7 chunk payloads this serialisation tax is pure overhead.

This module provides the alternative: the worker packs the chunk's
arrays into one :class:`multiprocessing.shared_memory.SharedMemory`
segment and returns a tiny :class:`ShmChunk` descriptor (segment name
plus per-array dtype/shape/offset specs).  The parent attaches the
segment, materialises the arrays straight out of the mapped buffer,
then closes and unlinks it.  Only the descriptor crosses the pickle
boundary.

Fallback rules — the transport **never** changes results, it only
changes how bytes move, so every fallback silently returns the plain
dict for ordinary pickling:

* the platform has no usable ``shared_memory`` (non-POSIX, ``/dev/shm``
  mounted ``noexec``/absent, import failure);
* the chunk is small (``total nbytes < policy.min_bytes``) — pickling
  small results is faster than a segment round-trip;
* a value is not an ``ndarray``, or its dtype is ``object`` (pointer
  arrays cannot live in shared memory);
* segment allocation fails (``OSError`` — e.g. ``/dev/shm`` full).

Leak discipline: segments are created in workers and unlinked by
exactly one parent-side consumer (:func:`decode_chunk`), or by
:func:`release_chunk` when a supervisor abandons a completed-but-
unconsumed future (pool rebuild, watchdog cancellation, interrupt).
Both are idempotent — a second unlink of the same segment is a no-op —
and every segment name carries :data:`SHM_NAME_PREFIX` so tests can
assert nothing is left behind by scanning ``/dev/shm``.

The parent must start the ``multiprocessing`` resource tracker *before*
the worker pool forks (:func:`ensure_resource_tracker`); otherwise each
forked worker lazily spawns its own tracker, the parent's ``unlink``
never reaches it, and interpreter shutdown prints spurious
leaked-segment warnings.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from threading import Lock
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

ChunkResult = Dict[str, np.ndarray]

#: Every segment this module creates starts with this name prefix, so a
#: test (or an operator) can find orphans with ``ls /dev/shm``.
SHM_NAME_PREFIX = "repro_shm_"

#: Below this payload size a pickle round-trip beats a segment
#: create/attach/unlink cycle; measured crossover is tens of KiB.
DEFAULT_MIN_BYTES = 1 << 16


@dataclass(frozen=True)
class TransportPolicy:
    """Worker-side knobs of the shared-memory transport.

    Picklable and tiny on purpose: the supervisor sends one per chunk
    submission, and the worker decides per-chunk whether the payload
    rides shared memory or falls back to pickling.
    """

    min_bytes: int = DEFAULT_MIN_BYTES
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.min_bytes < 0:
            raise ValueError("min_bytes must be non-negative")


@dataclass(frozen=True)
class _ArraySpec:
    """Where one named array lives inside a segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int


@dataclass(frozen=True)
class ShmChunk:
    """Descriptor of one chunk result parked in a shared-memory segment."""

    segment: str
    specs: Tuple[_ArraySpec, ...]
    total_bytes: int


class TransportStats:
    """Thread-safe parent-side counters of how chunk bytes travelled.

    Lives on the supervisor side only (it holds a lock, so it must
    never ride into a worker); the suite summary reads it to report
    transport bytes per run.
    """

    def __init__(self) -> None:
        self._lock = Lock()
        self.shm_chunks = 0
        self.shm_bytes = 0
        self.pickled_chunks = 0
        self.pickled_bytes = 0

    def record_shm(self, nbytes: int) -> None:
        with self._lock:
            self.shm_chunks += 1
            self.shm_bytes += nbytes

    def record_pickled(self, nbytes: int) -> None:
        with self._lock:
            self.pickled_chunks += 1
            self.pickled_bytes += nbytes

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {"shm_chunks": self.shm_chunks,
                    "shm_bytes": self.shm_bytes,
                    "pickled_chunks": self.pickled_chunks,
                    "pickled_bytes": self.pickled_bytes}


# ---------------------------------------------------------------------------
# Availability probing
# ---------------------------------------------------------------------------

_AVAILABLE: Optional[bool] = None


def shm_available() -> bool:
    """Whether this platform can create and map a shared-memory segment.

    Probed once per process by actually allocating (and immediately
    unlinking) a one-byte segment, so exotic container setups that stub
    the module but reject ``shm_open`` still fall back cleanly.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        _AVAILABLE = _probe()
    return _AVAILABLE


def _probe() -> bool:
    try:
        from multiprocessing import shared_memory
        segment = shared_memory.SharedMemory(create=True, size=1)
        segment.close()
        segment.unlink()
        return True
    except Exception:
        return False


def ensure_resource_tracker() -> None:
    """Start the parent's resource tracker before any pool forks.

    Workers inherit the running tracker, so a segment registered at
    worker-side creation is unregistered by the parent-side unlink in
    the *same* tracker — no spurious "leaked shared_memory" warnings at
    shutdown.  Best-effort: the tracker is a private API, so failures
    degrade to pickled transport semantics rather than erroring.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.ensure_running()
    except Exception:
        pass


# ---------------------------------------------------------------------------
# Worker side: encode
# ---------------------------------------------------------------------------

_SEQUENCE = 0


def _segment_name() -> str:
    """A collision-resistant, prefix-tagged segment name."""
    global _SEQUENCE
    _SEQUENCE += 1
    # OS entropy names an IPC segment; it never feeds a result stream.
    token = os.urandom(4).hex()  # repro-lint: disable=RPR302
    return f"{SHM_NAME_PREFIX}{os.getpid()}_{_SEQUENCE}_{token}"


def _eligible(result: ChunkResult, policy: TransportPolicy
              ) -> Optional[List[Tuple[str, np.ndarray]]]:
    """The arrays to pack, or ``None`` when the chunk must pickle."""
    if not policy.enabled or not result:
        return None
    arrays: List[Tuple[str, np.ndarray]] = []
    total = 0
    for name, value in result.items():
        if not isinstance(value, np.ndarray) or value.dtype.hasobject:
            return None
        arrays.append((name, value))
        total += value.nbytes
    if total < policy.min_bytes:
        return None
    return arrays


def encode_chunk(result: ChunkResult, policy: Optional[TransportPolicy]
                 ) -> Union[ChunkResult, ShmChunk]:
    """Pack a chunk result into shared memory (worker side).

    Returns the original dict whenever any fallback rule applies; the
    caller pickles whatever comes back, so the function can never fail
    a chunk — at worst it declines the optimisation.
    """
    if policy is None or not shm_available():
        return result
    arrays = _eligible(result, policy)
    if arrays is None:
        return result

    from multiprocessing import shared_memory

    specs: List[_ArraySpec] = []
    offset = 0
    packed: List[Tuple[int, np.ndarray]] = []
    for name, value in arrays:
        contiguous = np.ascontiguousarray(value)
        specs.append(_ArraySpec(name=name, dtype=contiguous.dtype.str,
                                shape=tuple(contiguous.shape),
                                offset=offset, nbytes=contiguous.nbytes))
        packed.append((offset, contiguous))
        offset += contiguous.nbytes
    try:
        segment = shared_memory.SharedMemory(create=True, size=max(offset, 1),
                                             name=_segment_name())
    except OSError:
        return result
    try:
        for start, contiguous in packed:
            if contiguous.nbytes == 0:
                continue
            view = np.frombuffer(segment.buf, dtype=np.uint8,
                                 count=contiguous.nbytes, offset=start)
            view[:] = contiguous.view(np.uint8).reshape(-1)
            del view  # drop the exported pointer before close()
        name = segment.name
    finally:
        segment.close()
    return ShmChunk(segment=name, specs=tuple(specs), total_bytes=offset)


# ---------------------------------------------------------------------------
# Parent side: decode / release
# ---------------------------------------------------------------------------

def decode_chunk(raw: Union[ChunkResult, ShmChunk],
                 stats: Optional[TransportStats] = None) -> ChunkResult:
    """Materialise a worker's chunk result (parent side).

    Shared-memory descriptors are expanded back into named arrays and
    the segment is unlinked; plain dicts pass through untouched.  With
    ``stats`` given, the travelled bytes are recorded either way.
    """
    if not isinstance(raw, ShmChunk):
        if stats is not None:
            stats.record_pickled(sum(
                value.nbytes for value in raw.values()
                if isinstance(value, np.ndarray)))
        return raw

    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=raw.segment)
    try:
        result: ChunkResult = {}
        for spec in raw.specs:
            dtype = np.dtype(spec.dtype)
            if spec.nbytes == 0:
                result[spec.name] = np.empty(spec.shape, dtype=dtype)
                continue
            view = np.frombuffer(segment.buf, dtype=np.uint8,
                                 count=spec.nbytes, offset=spec.offset)
            result[spec.name] = (view.view(dtype).reshape(spec.shape)
                                 .copy())
            del view
    finally:
        segment.close()
        _unlink_quiet(segment)
    if stats is not None:
        stats.record_shm(raw.total_bytes)
    return result


def release_chunk(raw: object) -> None:
    """Unlink an abandoned transported chunk without decoding it.

    Supervisors call this for every completed future whose result was
    never consumed (cancelled rounds, rebuilt pools, interrupts), so a
    recovery path can never strand a segment.  Idempotent: releasing a
    chunk that was already decoded or released is a no-op, and plain
    dict results are ignored.
    """
    if not isinstance(raw, ShmChunk):
        return
    try:
        from multiprocessing import shared_memory
        segment = shared_memory.SharedMemory(name=raw.segment)
    except (FileNotFoundError, OSError, ImportError):
        return
    segment.close()
    _unlink_quiet(segment)


def _unlink_quiet(segment) -> None:
    try:
        segment.unlink()
    except FileNotFoundError:  # lost a release/decode race: already gone
        pass


def active_segments() -> List[str]:
    """Names of live transport segments on this host (POSIX only).

    The leak-check tests snapshot this before and after a run; on
    platforms without ``/dev/shm`` it degrades to an empty list.
    """
    try:
        return sorted(name for name in os.listdir("/dev/shm")
                      if name.startswith(SHM_NAME_PREFIX))
    except OSError:
        return []


__all__ = [
    "ChunkResult",
    "DEFAULT_MIN_BYTES",
    "SHM_NAME_PREFIX",
    "ShmChunk",
    "TransportPolicy",
    "TransportStats",
    "active_segments",
    "decode_chunk",
    "encode_chunk",
    "ensure_resource_tracker",
    "release_chunk",
    "shm_available",
]
