"""The paper's quantitative prose claims, as checkable functions.

Beyond the figures, the paper commits to several numbers in prose.
Each function here evaluates one claim and returns the measured value
so tests can assert the band and EXPERIMENTS.md can report it:

* C1 — "the relative gain [in capacity] is more when the received
  signal strengths are similar" and SIC capacity is always >= no-SIC;
* C2 — the same-receiver airtime gain peaks when the stronger SNR is
  roughly the square of the weaker ("twice in terms of SNR in dB");
* C3 — two-receiver Monte-Carlo: "no gain from SIC in 90 % of the
  cases";
* C4 — Fig. 11a: SIC alone gains > 20 % in about 20 % of one-receiver
  topologies; with a Section-5 mechanism, > 20 % gain in about 40 %;
* C5 — Fig. 11b: two-receiver cases see almost no gain even with the
  optimizations;
* C6 — the scheduler is optimal (equals brute force) and the reduction
  handles odd client counts.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments import fig3, fig4, fig6, fig11
from repro.util.rng import SeedLike


def capacity_gain_shape(n_points: int = 41) -> Dict[str, float]:
    """C1: gain >= 1 everywhere, diagonal beats off-diagonal rows."""
    grid = fig3.compute(n_points=n_points)
    values = grid.values
    diag = np.diag(values)
    # Compare each diagonal element with the far off-diagonal element
    # in the same row (most dissimilar RSS at the same weaker SNR).
    off = values[:, -1]
    return {
        "min_gain": float(values.min()),
        "max_gain": float(values.max()),
        "frac_diag_above_row_edge": float(np.mean(diag >= off)),
    }


def airtime_ridge_ratio(n_points: int = 101) -> float:
    """C2: the dB ratio along the Fig. 4 ridge (expect about 2)."""
    grid = fig4.compute(n_points=n_points)
    return fig4.ridge_snr_ratio(grid)


def two_receiver_no_gain_fraction(n_samples: int = 4_000,
                                  seed: SeedLike = 2010) -> float:
    """C3: fraction of two-receiver topologies with zero SIC gain."""
    result = fig6.compute(ranges_m=(20.0,), n_samples=n_samples, seed=seed)
    (entry,) = result.values()
    return entry["summary"]["frac_no_gain"]


def technique_gain_fractions(n_samples: int = 4_000,
                             seed: SeedLike = 2010) -> Dict[str, float]:
    """C4 + C5: the >20 %-gain fractions behind Fig. 11's prose."""
    result = fig11.compute(n_samples=n_samples, seed=seed)
    return fig11.headline_fractions(result)


def evaluate_all(n_samples: int = 4_000,
                 seed: SeedLike = 2010) -> Dict[str, object]:
    """Evaluate every claim; the CLI prints this as the claims report."""
    return {
        "C1_capacity_gain_shape": capacity_gain_shape(),
        "C2_airtime_ridge_db_ratio": airtime_ridge_ratio(),
        "C3_two_receiver_frac_no_gain": two_receiver_no_gain_fraction(
            n_samples=n_samples, seed=seed),
        "C4_C5_gain_over_20pct_fractions": technique_gain_fractions(
            n_samples=n_samples, seed=seed),
    }
