"""Fig. 11 — CDFs of SIC gain with the Section-5 techniques.

(a) two transmitters to one receiver: plain SIC is modest (the paper
reads roughly "20 % of cases gain over 20 %"), but power control /
multirate / packing lift it to "over 20 % gain in 40 % of topologies";
(b) two transmitters to two receivers: SIC alone has almost no gain and
very little even with the optimizations.

Runs on the batched Monte-Carlo engines; the two panels get spawned
``SeedSequence`` children (stable content for the result cache), and
``n_workers``/``chunk_size``/``cache``/``policy`` pass straight
through (``policy`` carries the supervised executor's fault-tolerance
knobs; see ``docs/resilience.md``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.montecarlo import (
    CacheLike,
    MonteCarloConfig,
    PolicyLike,
    one_receiver_technique_gains,
    two_receiver_technique_gains,
)
from repro.util.cdf import gain_cdf_summary
from repro.util.rng import SeedLike, spawn_seed_sequences
from repro.util.timing import PhaseTimer, maybe_phase


def compute(n_samples: int = 10_000,
            range_m: float = 20.0,
            pathloss_exponent: float = 4.0,
            seed: SeedLike = 2010,
            n_workers: int = 1,
            chunk_size: Optional[int] = None,
            cache: CacheLike = None,
            policy: PolicyLike = None,
            timer: Optional[PhaseTimer] = None
            ) -> Dict[str, Dict[str, object]]:
    """Both panels: per-technique gain samples plus summaries.

    Returns ``{"one_receiver": {technique: {...}},
    "two_receivers": {technique: {...}}}`` where each technique entry
    holds ``gains`` (ndarray) and ``summary`` (dict).  ``timer``
    charges one phase per panel (injected by the suite engine).
    """
    config = MonteCarloConfig(n_samples=n_samples, range_m=range_m,
                              pathloss_exponent=pathloss_exponent)
    seed_one, seed_two = spawn_seed_sequences(seed, 2)

    result: Dict[str, Dict[str, object]] = {}
    with maybe_phase(timer, "one_receiver"):
        one = one_receiver_technique_gains(
            config, seed_one, n_workers=n_workers,
            chunk_size=chunk_size, cache=cache, policy=policy)
    result["one_receiver"] = {
        technique: {"gains": gains, "summary": gain_cdf_summary(gains)}
        for technique, gains in one.items()
    }
    with maybe_phase(timer, "two_receivers"):
        two = two_receiver_technique_gains(
            config, seed_two, n_workers=n_workers,
            chunk_size=chunk_size, cache=cache, policy=policy)
    result["two_receivers"] = {
        technique: {"gains": gains, "summary": gain_cdf_summary(gains)}
        for technique, gains in two.items()
    }
    return result


def headline_fractions(result: Dict[str, Dict[str, object]]) -> Dict[str, float]:
    """The fractions the paper's prose quotes (gain over 20 %)."""
    out = {}
    for panel, techniques in result.items():
        for technique, entry in techniques.items():
            out[f"{panel}/{technique}"] = (
                entry["summary"]["frac_gain_over_20pct"])
    return out
