"""Fig. 8 — download from two APs to one client: heatmap of Eq.10/Eq.6.

With a wired backbone both packets can simply be sent serially by the
*stronger* AP, so the no-SIC baseline is much stronger than in the
upload case.  Claims to reproduce: modest gains only where one RSS is
roughly the square of the other, and "overall gains with SIC are quite
limited in this download scenario" (max well below the Fig. 4 peak).
"""

from __future__ import annotations

import numpy as np

from repro.phy.noise import thermal_noise_watts
from repro.phy.shannon import Channel
from repro.sic.airtime import download_gain_two_aps_one_client
from repro.util.containers import GridResult
from repro.util.units import db_to_linear

DEFAULT_BANDWIDTH_HZ = 20e6
DEFAULT_PACKET_BITS = 12_000.0


def compute(snr_db_min: float = 0.5,
            snr_db_max: float = 50.0,
            n_points: int = 101,
            bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ,
            packet_bits: float = DEFAULT_PACKET_BITS) -> GridResult:
    """Download-gain grid over the two AP SNRs at the client (dB)."""
    channel = Channel(bandwidth_hz=bandwidth_hz,
                      noise_w=thermal_noise_watts(bandwidth_hz))
    n0 = channel.noise_w
    snr_db = np.linspace(snr_db_min, snr_db_max, n_points)
    s = np.asarray(db_to_linear(snr_db), dtype=float) * n0
    gain = np.asarray(
        download_gain_two_aps_one_client(channel, packet_bits,
                                         s[None, :], s[:, None]),
        dtype=float)
    # The MAC would never use SIC where it loses to the stronger AP
    # sending both packets; clip at 1 like the paper's shading.
    gain = np.maximum(gain, 1.0)
    return GridResult(
        name="fig8-download-gain",
        x_label="SNR1 (dB)",
        y_label="SNR2 (dB)",
        x=snr_db,
        y=snr_db,
        values=gain,
        meta={"bandwidth_hz": bandwidth_hz, "packet_bits": packet_bits},
    )
