"""Command-line entry point: regenerate paper figures.

Examples::

    python -m repro.experiments fig6
    python -m repro.experiments all --quick
    python -m repro.experiments claims --samples 2000

Exit codes follow the operator taxonomy of :mod:`repro.util.errors`:
``0`` ok, ``1`` fatal, ``2`` usage, ``3`` transient, ``4``
corrupt-state, ``5`` resumable (interrupted with checkpoints flushed —
rerun the same command to resume).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import json

from repro.experiments import claims
from repro.experiments.registry import (
    REGISTRY,
    jsonify,
    ordered_figures,
    run_experiment,
)
from repro.experiments.suite import default_suite_workers, run_suite
from repro.util.cache import atomic_write_text
from repro.util.errors import run_cli

#: Reduced parameters for --quick runs (CI-sized, same code paths).
QUICK_KWARGS = {
    "fig2": {"n_points": 21},
    "fig3": {"n_points": 21},
    "fig4": {"n_points": 31},
    "fig6": {"n_samples": 500},
    "fig7": {"n_ewlan_grids": 20, "n_residential_rows": 60},
    "fig8": {"n_points": 21},
    "fig10": {},
    "fig11": {"n_samples": 500},
    "fig12": {"sizes": (3, 5, 8), "n_trials": 5},
    "fig13": {"max_snapshots": 40},
    "fig14": {"n_scenarios": 300},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures from the model.",
    )
    parser.add_argument(
        "figure",
        help="figure id (fig2..fig14), 'all', 'claims', or 'list'")
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sample counts / grid sizes (same code paths)")
    parser.add_argument(
        "--samples", type=int, default=None,
        help="override Monte-Carlo sample count where applicable")
    parser.add_argument(
        "--seed", type=int, default=2010,
        help="Monte-Carlo seed (default 2010)")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the Monte-Carlo figures "
             "(results are identical for any count)")
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="samples per supervised chunk (enables checkpoint "
             "granularity; results are identical for any size)")
    parser.add_argument(
        "--report", type=Path, default=None, metavar="FILE",
        help="also write the output as a markdown report to FILE")
    parser.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="also dump the raw figure data as JSON to FILE "
             "(single-figure runs only)")
    return parser


#: Figures whose compute() threads the supervised-execution knobs.
_SUPERVISED_FIGURES = ("fig6", "fig7", "fig11", "fig13", "fig14")

#: Figures whose scale responds to --samples (the Monte-Carlo /
#: trace-driven set); the rest are closed-form or fixed-size.
_SAMPLES_FIGURES = frozenset(_SUPERVISED_FIGURES)


def _kwargs_for(figure: str, args: argparse.Namespace) -> dict:
    kwargs = dict(QUICK_KWARGS.get(figure, {})) if args.quick else {}
    if args.samples is not None:
        if figure in ("fig6", "fig11"):
            kwargs["n_samples"] = args.samples
        elif figure == "fig14":
            kwargs["n_scenarios"] = args.samples
        elif figure == "fig7":
            # One EWLAN grid is the unit; residential rows are cheaper,
            # so keep the quick-mode 1:3 ratio.
            kwargs["n_ewlan_grids"] = args.samples
            kwargs["n_residential_rows"] = 3 * args.samples
        elif figure == "fig13":
            kwargs["max_snapshots"] = args.samples
    if figure in _SUPERVISED_FIGURES:
        kwargs.setdefault("seed", args.seed)
        if args.workers is not None:
            kwargs["n_workers"] = args.workers
        if args.chunk_size is not None:
            kwargs["chunk_size"] = args.chunk_size
    return kwargs


def _note_inapplicable_samples(args: argparse.Namespace,
                               figures: List[str]) -> None:
    """One consolidated stderr note instead of silently ignoring."""
    if args.samples is None:
        return
    skipped = [figure for figure in figures
               if figure not in _SAMPLES_FIGURES]
    if skipped:
        print("note: --samples does not apply to "
              + ", ".join(skipped)
              + " (closed-form or fixed-size figures)", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.figure == "list":
        for figure in ordered_figures():
            print(f"{figure:>6}: {REGISTRY[figure].description}")
        return 0

    if args.figure == "claims":
        n_samples = args.samples or (500 if args.quick else 4000)
        report = claims.evaluate_all(n_samples=n_samples, seed=args.seed)
        for claim, value in report.items():
            print(f"{claim}: {value}")
        return 0

    figures = ordered_figures() if args.figure == "all" else [args.figure]
    if args.json is not None and len(figures) != 1:
        print("--json needs a single figure, not 'all'", file=sys.stderr)
        return 2
    for figure in figures:
        if figure not in REGISTRY:
            print(f"unknown figure {figure!r}; try 'list'", file=sys.stderr)
            return 2
    _note_inapplicable_samples(args, figures)

    summary: Optional[List[str]] = None
    if args.figure == "all":
        # All figures at once ride the shared suite pool; per-figure
        # kwargs are exactly the single-figure ones, so suite outputs
        # stay bit-identical to individual runs.
        suite = run_suite(
            figures,
            {figure: _kwargs_for(figure, args) for figure in figures},
            n_workers=args.workers or default_suite_workers())
        runs = [outcome.run for outcome in suite.outcomes
                if outcome.run is not None]
        summary = suite.summary_lines()
    else:
        runs = [run_experiment(figure, **_kwargs_for(figure, args))
                for figure in figures]

    report_sections: List[str] = []
    for run in runs:
        if args.json is not None:
            atomic_write_text(
                args.json,
                json.dumps({"figure": run.figure,
                            "data": jsonify(run.result)},
                           indent=2))
            print(f"json written to {args.json}")
        for line in run.lines:
            print(line)
        print()
        if args.report is not None:
            header, *body = run.lines
            report_sections.append(
                f"## {header.strip('= ')}\n\n```\n"
                + "\n".join(body) + "\n```\n")
    if summary is not None:
        for line in summary:
            print(line)
        print()
        if args.report is not None:
            header, *body = summary
            report_sections.append(
                f"## {header.strip('= ')}\n\n```\n"
                + "\n".join(body) + "\n```\n")
    if args.report is not None:
        mode = "quick" if args.quick else "full-scale"
        atomic_write_text(
            args.report,
            "# SIC reproduction — figure report\n\n"
            f"Generated by `python -m repro.experiments` ({mode} run, "
            f"seed {args.seed}).\n\n"
            + "\n".join(report_sections))
        print(f"report written to {args.report}")
    return 0


def entry() -> int:
    """Console-script entry: :func:`main` under the operator taxonomy."""
    return run_cli("repro-experiments", main)


if __name__ == "__main__":
    sys.exit(entry())
