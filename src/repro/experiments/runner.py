"""Supervised chunked execution for the Monte-Carlo engines.

PR 1's chunked substrate fanned chunks out to a ``ProcessPoolExecutor``
and hoped: one crashed worker, one wedged pool, or one interrupt killed
the whole sweep.  This module replaces that with a **supervisor** that
keeps the hard invariant — results bit-identical to a fault-free serial
run — while recovering from:

* **chunk failures** — each failed chunk is retried under a
  :class:`~repro.util.faults.RetryPolicy` (bounded attempts,
  deterministic backoff through an injectable sleep hook); a chunk that
  exhausts its budget raises :class:`ChunkExecutionError`;
* **pool failures** — ``BrokenProcessPool`` (a worker OOM-killed or
  segfaulted) and worker timeouts rebuild the pool and resubmit *only
  the chunks still missing*; after ``max_pool_rebuilds`` consecutive
  pool deaths the supervisor degrades to in-process execution with a
  structured :class:`ExecutionDegradedWarning` — never a silent
  behaviour change;
* **hung workers** — a :class:`Watchdog` (per-chunk deadline plus a
  pool heartbeat, measured on an *injectable* clock so the policy is
  testable without wall-clock sleeps) detects a wedged chunk or a
  silent pool and routes recovery through the same rebuild path, so a
  single stuck worker never stalls a sweep indefinitely;
* **operator interrupts** — SIGINT/SIGTERM (delivered as
  :class:`repro.util.errors.ResumableInterrupt` by the CLI layer) make
  the supervisor flush every already-completed chunk to the checkpoint
  store before the interrupt propagates, so an interrupted sweep loses
  at most the chunks still in flight and resumes bit-identically;
* **interruption** — with a checkpoint directory configured
  (``REPRO_CHECKPOINT_DIR`` or :attr:`ExecutionPolicy.checkpoint_dir`)
  every completed chunk is persisted atomically
  (:class:`~repro.util.checkpoint.CheckpointStore`); a resumed sweep
  reloads verified chunks and recomputes only the rest.

Determinism holds because chunk ``i``'s result is a pure function of
``(config, chunk seed i, chunk size i)``: retries, pool rebuilds,
degradation and resume all re-evaluate the *same* pure function, so
worker count, retry count and resume-vs-fresh never change results.
Every recovery path is testable via the deterministic
:class:`~repro.util.faults.FaultInjector` (seeded, keyed on
``(engine, chunk_index, attempt)`` — no wall clock, no global
randomness).

Two execution substrates share all of the above. By default each pool
round builds a private ``ProcessPoolExecutor`` (historical behaviour).
When :attr:`ExecutionPolicy.pool` carries a shared suite pool
(:class:`repro.experiments.suite.SuitePool`), rounds submit through the
pool's per-engine lane instead — the supervisor logic (retries,
watchdog, rebuild escalation, checkpoints) is unchanged; only *where*
chunks execute moves.  Orthogonally, :attr:`ExecutionPolicy.transport`
enables the zero-copy chunk transport
(:mod:`repro.experiments.transport`): workers park large results in
shared memory and the supervisor decodes them on consumption,
releasing any abandoned segments on every recovery path.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future
from concurrent.futures import ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Protocol, Union)

import numpy as np

from repro.experiments.transport import (
    TransportPolicy,
    TransportStats,
    decode_chunk,
    encode_chunk,
    ensure_resource_tracker,
    release_chunk,
)
from repro.util.cache import ResultCache
from repro.util.checkpoint import CheckpointStore, checkpoint_dir_from_env
from repro.util.errors import ResumableInterrupt, TransientError
from repro.util.faults import FaultInjector, RetryPolicy
from repro.util.rng import SeedLike, spawn_seed_sequences

ChunkResult = Dict[str, np.ndarray]
ChunkFn = Callable[..., ChunkResult]
SubmitFn = Callable[..., Future]


class ExecutionDegradedWarning(RuntimeWarning):
    """Pool execution fell back to in-process after repeated pool deaths.

    Structured: carries the engine name, the number of pool failures
    observed, and the last failure's description, so callers can log or
    assert on the degradation instead of parsing a message.
    """

    def __init__(self, engine: str, pool_failures: int, reason: str) -> None:
        self.engine = engine
        self.pool_failures = pool_failures
        self.reason = reason
        super().__init__(
            f"engine {engine!r}: process pool failed {pool_failures} times "
            f"(last: {reason}); degrading to in-process execution — results "
            "are unchanged, throughput is not")


class ChunkExecutionError(TransientError, RuntimeError):
    """A chunk kept failing after exhausting its retry budget.

    Classified *transient* in the operator taxonomy: the computation is
    pure, so exhausted retries indicate environment (OOM, flaky node),
    and a rerun — resuming from checkpoints — may well succeed.
    """

    def __init__(self, engine: str, chunk_index: int, attempts: int,
                 last_error: BaseException) -> None:
        self.engine = engine
        self.chunk_index = chunk_index
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"engine {engine!r}: chunk {chunk_index} failed "
            f"{attempts} attempt(s); last error: {last_error!r}",
            hint=("completed chunks are checkpointed when "
                  "REPRO_CHECKPOINT_DIR is set; rerunning resumes from "
                  "them"))


class _PoolBroken(Exception):
    """Internal: the current pool round is unusable (rebuild or degrade)."""


class SharedRoundLike(Protocol):
    """One pool round opened against a shared worker pool."""

    def submit(self, fn: Callable[..., object], *args: object) -> Future:
        """Queue one chunk attempt on the shared pool's lane."""

    def broken(self) -> None:
        """The supervisor declared this round broken; rebuild if still
        on the generation this round was opened against."""

    def abandon(self, futures: Iterable[Future]) -> None:
        """Futures the supervisor will never consume: release any
        transported result they already carry (or will carry)."""


class SharedPoolLike(Protocol):
    """A persistent pool shared by many supervisors (suite engine)."""

    def open_round(self, lane: str) -> SharedRoundLike:
        """Open a submission round on ``lane`` (one lane per engine)."""


@dataclass(frozen=True)
class Watchdog:
    """Hung-worker detection policy for pooled execution.

    ``chunk_deadline_s`` bounds any single chunk attempt; a chunk still
    running past it is declared hung and the pool round is broken (the
    rebuild resubmits the chunk, restarting its clock).
    ``heartbeat_interval_s`` bounds the gap between *any* two chunk
    completions — a pool that completes nothing within it is wedged.
    ``clock`` is injectable (``None`` means ``time.monotonic``), so
    watchdog decisions are testable with a scripted clock and never
    force tests to sleep.  Timing only ever decides *when* a chunk is
    recomputed, never *what* it computes, so the bit-identity invariant
    is untouched.
    """

    chunk_deadline_s: Optional[float] = None
    heartbeat_interval_s: Optional[float] = None
    clock: Optional[Callable[[], float]] = None

    def __post_init__(self) -> None:
        if self.chunk_deadline_s is not None and self.chunk_deadline_s <= 0:
            raise ValueError("chunk_deadline_s must be positive")
        if (self.heartbeat_interval_s is not None
                and self.heartbeat_interval_s <= 0):
            raise ValueError("heartbeat_interval_s must be positive")

    @property
    def armed(self) -> bool:
        return (self.chunk_deadline_s is not None
                or self.heartbeat_interval_s is not None)


class _WatchdogMonitor:
    """Per-pool-round watchdog state: chunk start times + last heartbeat."""

    def __init__(self, watchdog: Watchdog) -> None:
        self._deadline = watchdog.chunk_deadline_s
        self._heartbeat = watchdog.heartbeat_interval_s
        self._clock = watchdog.clock or time.monotonic
        self._last_beat = self._clock()
        self._starts: Dict[int, float] = {}

    def submitted(self, index: int) -> None:
        """A chunk attempt entered the pool; its deadline clock restarts."""
        self._starts[index] = self._clock()

    def completed(self, index: int) -> None:
        """A chunk attempt finished (success or failure): heartbeat."""
        self._starts.pop(index, None)
        self._last_beat = self._clock()

    def wait_timeout(self) -> Optional[float]:
        """How long the supervisor may block before it must re-check."""
        now = self._clock()
        cutoffs = []
        if self._heartbeat is not None:
            cutoffs.append(self._last_beat + self._heartbeat)
        if self._deadline is not None and self._starts:
            cutoffs.append(min(self._starts.values()) + self._deadline)
        if not cutoffs:
            return None
        return max(0.0, min(cutoffs) - now)

    def expired(self) -> Optional[str]:
        """A human-readable reason when a limit has been crossed."""
        now = self._clock()
        if (self._heartbeat is not None
                and now - self._last_beat >= self._heartbeat):
            return f"no worker progress within {self._heartbeat:g}s"
        if self._deadline is not None:
            for index in sorted(self._starts):
                if now - self._starts[index] >= self._deadline:
                    return (f"chunk {index} exceeded its "
                            f"{self._deadline:g}s deadline")
        return None


@dataclass(frozen=True)
class ExecutionPolicy:
    """Fault-tolerance knobs threaded through every batched engine.

    The default policy retries each chunk up to
    ``RetryPolicy.max_attempts`` times with no backoff sleeping,
    rebuilds a broken pool up to ``max_pool_rebuilds`` times before
    degrading to in-process execution, and checkpoints only when a
    directory is configured.  ``faults`` is the deterministic injector
    used by the resilience tests; production runs leave it ``None``.

    ``watchdog`` supervises pooled rounds for hung workers; when it is
    unset, a bare ``worker_timeout_s`` (the pre-watchdog knob, kept for
    compatibility) arms a heartbeat-only watchdog.

    ``pool`` plugs in a *shared* worker pool (the suite engine's
    :class:`repro.experiments.suite.SuitePool`, or anything matching
    its ``open_round``/``abandon`` protocol): pooled rounds then submit
    chunks to that pool's per-engine lane instead of building and
    tearing down a private ``ProcessPoolExecutor``, and a broken round
    asks the shared pool to rebuild.  ``transport`` opts pooled chunk
    results into the shared-memory transport
    (:mod:`repro.experiments.transport`); ``transport_stats`` is the
    parent-side byte counter the suite summary reads.  Neither knob
    ever changes results — chunks stay pure functions of
    ``(config, seed, size)``.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_pool_rebuilds: int = 2
    worker_timeout_s: Optional[float] = None
    checkpoint_dir: Optional[Union[str, Path]] = None
    faults: Optional[FaultInjector] = None
    watchdog: Optional[Watchdog] = None
    pool: Optional["SharedPoolLike"] = None
    transport: Optional[TransportPolicy] = None
    transport_stats: Optional[TransportStats] = None

    def __post_init__(self) -> None:
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be non-negative")
        if self.worker_timeout_s is not None and self.worker_timeout_s <= 0:
            raise ValueError("worker_timeout_s must be positive")

    def effective_watchdog(self) -> Optional[Watchdog]:
        """The armed watchdog for pooled rounds, or ``None``."""
        if self.watchdog is not None:
            return self.watchdog if self.watchdog.armed else None
        if self.worker_timeout_s is not None:
            return Watchdog(heartbeat_interval_s=self.worker_timeout_s)
        return None

    @classmethod
    def from_env(cls) -> "ExecutionPolicy":
        """Default policy plus ``$REPRO_CHECKPOINT_DIR`` when set."""
        return cls(checkpoint_dir=checkpoint_dir_from_env())


# ---------------------------------------------------------------------------
# Chunk layout (deterministic; shared with the engines' public helpers)
# ---------------------------------------------------------------------------

def chunk_sizes(n_samples: int, chunk_size: Optional[int]) -> List[int]:
    """Split ``n_samples`` into deterministic chunk lengths.

    ``chunk_size=None`` keeps the whole run in a single chunk (the
    draw-for-draw-compatible mode); otherwise full chunks of
    ``chunk_size`` plus one remainder chunk.
    """
    if chunk_size is None:
        return [n_samples]
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    full, remainder = divmod(n_samples, chunk_size)
    return [chunk_size] * full + ([remainder] if remainder else [])


def chunk_seeds(seed: SeedLike, n_chunks: int) -> List[SeedLike]:
    """Per-chunk seeds, independent of worker count.

    A single chunk consumes the caller's seed directly (so the batch
    matches the scalar reference stream); multiple chunks get spawned
    child ``SeedSequence`` objects, which are picklable and therefore
    cross process boundaries unchanged.
    """
    if n_chunks == 1:
        return [seed]
    return list(spawn_seed_sequences(seed, n_chunks))


def seed_cache_token(
        seed: SeedLike) -> Union[int, np.random.SeedSequence, None]:
    """A stable, hashable rendering of ``seed`` — or None if the seed
    cannot key a cache entry (OS entropy, stateful generators)."""
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.SeedSequence) and seed.entropy is not None:
        return seed
    return None


#: Backwards-compatible alias (pre-indexed-runner name).
_seed_cache_token = seed_cache_token


def chunk_starts(sizes: List[int]) -> List[int]:
    """Start offsets of each chunk in the merged item order."""
    starts: List[int] = []
    offset = 0
    for size in sizes:
        starts.append(offset)
        offset += size
    return starts


def _resolve_cache(cache: Optional[ResultCache]) -> ResultCache:
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache.from_env()


def _guarded_chunk(chunk_fn: ChunkFn, config: object, seed: SeedLike,
                   n: int, kwargs: Mapping[str, object],
                   faults: Optional[FaultInjector], engine: str,
                   chunk_index: int, attempt: int,
                   transport: Optional[TransportPolicy] = None
                   ) -> Union[ChunkResult, object]:
    """Evaluate one chunk attempt, applying injected faults first.

    Module-level (not a closure) so the pool can pickle it; runs inside
    the worker, so an injected fault exercises the same
    exception-through-``Future`` path a real crash does.  ``transport``
    is set only for pooled attempts: the result then rides a
    shared-memory segment (descriptor returned) when the payload
    qualifies, and the supervisor decodes it on receipt.
    """
    if faults is not None:
        faults.check_chunk(engine, chunk_index, attempt)
    result = chunk_fn(config, seed, n, **kwargs)
    if transport is not None:
        return encode_chunk(result, transport)
    return result


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------

class _Supervisor:
    """Drives one sweep's chunks to completion despite faults."""

    def __init__(self, engine: str, chunk_fn: ChunkFn, config: object,
                 seeds: List[SeedLike], sizes: List[int],
                 kwargs: Mapping[str, object], policy: ExecutionPolicy,
                 checkpoint: Optional[CheckpointStore]) -> None:
        self.engine = engine
        self.chunk_fn = chunk_fn
        self.config = config
        self.seeds = seeds
        self.sizes = sizes
        self.kwargs = kwargs
        self.policy = policy
        self.checkpoint = checkpoint
        self.results: Dict[int, ChunkResult] = {}
        #: Attempt number the next invocation of each chunk will carry.
        self.next_attempt: Dict[int, int] = {}
        self.pool_failures = 0
        self.pool_round = 0

    # -- shared bookkeeping -----------------------------------------------

    def pending(self) -> List[int]:
        return [i for i in range(len(self.sizes)) if i not in self.results]

    def _restore_checkpointed(self) -> None:
        if self.checkpoint is None:
            return
        for index in self.checkpoint.completed_chunks():
            chunk = self.checkpoint.get_chunk(index)
            if chunk is not None:
                self.results[index] = chunk

    def _finish_chunk(self, index: int, chunk: ChunkResult) -> None:
        self.results[index] = chunk
        if self.checkpoint is not None:
            self.checkpoint.put_chunk(index, chunk)

    def _submit_args(self, index: int, pooled: bool = False) -> tuple:
        attempt = self.next_attempt.setdefault(index, 1)
        args = (self.chunk_fn, self.config, self.seeds[index],
                self.sizes[index], self.kwargs, self.policy.faults,
                self.engine, index, attempt)
        if pooled and self.policy.transport is not None:
            return args + (self.policy.transport,)
        return args

    def _decoded(self, raw: object) -> ChunkResult:
        """Materialise a pooled result (shared-memory or pickled)."""
        return decode_chunk(raw, self.policy.transport_stats)

    def _record_chunk_failure(self, index: int, exc: BaseException) -> None:
        """Book a failed attempt; raise when the retry budget is gone."""
        attempt = self.next_attempt.get(index, 1)
        if attempt >= self.policy.retry.max_attempts:
            raise ChunkExecutionError(self.engine, index, attempt, exc)
        self.policy.retry.wait(attempt)
        self.next_attempt[index] = attempt + 1

    # -- execution modes --------------------------------------------------

    def run(self, n_workers: int) -> Dict[int, ChunkResult]:
        self._restore_checkpointed()
        pooled = n_workers > 1 or self.policy.pool is not None
        if pooled and len(self.pending()) > 1:
            self._run_pooled(n_workers)
        self._run_inline()
        return self.results

    def _run_inline(self) -> None:
        for index in self.pending():
            while True:
                try:
                    chunk = _guarded_chunk(*self._submit_args(index))
                except Exception as exc:  # anything a worker can die of
                    self._record_chunk_failure(index, exc)
                else:
                    self._finish_chunk(index, chunk)
                    break

    def _run_pooled(self, n_workers: int) -> None:
        """Pool rounds with rebuild-on-break; degrades after the budget."""
        while len(self.pending()) > 1:
            try:
                self._pool_round(n_workers)
                return
            except _PoolBroken as exc:
                self.pool_failures += 1
                if self.pool_failures > self.policy.max_pool_rebuilds:
                    warnings.warn(
                        ExecutionDegradedWarning(
                            self.engine, self.pool_failures, str(exc)),
                        stacklevel=2)
                    return  # the inline pass finishes the sweep

    def _pool_round(self, n_workers: int) -> None:
        """One pool lifetime: submit all pending chunks, drain, retry.

        Raises :class:`_PoolBroken` when the pool dies (for real, or by
        injection) so the caller can rebuild with only missing chunks.
        """
        round_index = self.pool_round
        self.pool_round += 1
        faults = self.policy.faults
        if faults is not None and faults.should_break_pool(round_index):
            raise _PoolBroken(f"injected pool break (round {round_index})")
        pending = self.pending()
        if self.policy.pool is not None:
            self._shared_round(self.policy.pool, pending)
        else:
            self._owned_round(n_workers, pending)

    def _owned_round(self, n_workers: int, pending: List[int]) -> None:
        """Historical mode: a private pool built for this round only."""
        workers = min(n_workers, len(pending))
        if self.policy.transport is not None:
            ensure_resource_tracker()
        futures: Dict[Future, int] = {}
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                self._submit_and_drain(pool.submit, futures, pending)
        finally:
            # The ``with`` exit waited for in-flight attempts, so every
            # future is settled here; release transported results that
            # nobody consumed (watchdog cancellations, broken rounds).
            _release_abandoned(futures)

    def _shared_round(self, shared: SharedPoolLike,
                      pending: List[int]) -> None:
        """Suite mode: chunks ride the shared pool's per-engine lane."""
        handle = shared.open_round(self.engine)
        futures: Dict[Future, int] = {}
        try:
            try:
                self._submit_and_drain(handle.submit, futures, pending)
            except _PoolBroken:
                handle.broken()
                raise
        finally:
            # Futures may still be in flight on the shared pool; the
            # pool releases their transported results on arrival.
            handle.abandon(list(futures))

    def _submit_and_drain(self, submit: SubmitFn,
                          futures: Dict[Future, int],
                          pending: List[int]) -> None:
        """Submit every pending chunk through ``submit`` and drain."""
        monitor = None
        watchdog = self.policy.effective_watchdog()
        if watchdog is not None:
            monitor = _WatchdogMonitor(watchdog)
        try:
            for index in pending:
                futures[submit(
                    _guarded_chunk,
                    *self._submit_args(index, pooled=True))] = index
                if monitor is not None:
                    monitor.submitted(index)
            self._drain(submit, futures, monitor)
        except BrokenExecutor as exc:
            raise _PoolBroken(str(exc) or type(exc).__name__) from exc

    def _drain(self, submit: SubmitFn,
               futures: Dict[Future, int],
               monitor: Optional[_WatchdogMonitor]) -> None:
        try:
            self._drain_inner(submit, futures, monitor)
        except (KeyboardInterrupt, ResumableInterrupt):
            # Operator interrupt: flush every chunk whose future already
            # completed into the checkpoint store, then let the
            # interrupt propagate — the run exits "resumable" having
            # lost only the chunks still in flight.
            self._flush_completed(futures)
            raise

    def _drain_inner(self, submit: SubmitFn,
                     futures: Dict[Future, int],
                     monitor: Optional[_WatchdogMonitor]) -> None:
        while futures:
            timeout = monitor.wait_timeout() if monitor is not None else None
            done, _ = wait(frozenset(futures), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            for future in done:
                index = futures.pop(future)
                if monitor is not None:
                    monitor.completed(index)
                try:
                    chunk = future.result()
                except BrokenExecutor:
                    # Put the future back so the round's cleanup path
                    # (abandon / release) still covers its result.
                    futures[future] = index
                    raise
                except Exception as exc:  # anything a worker can die of
                    self._record_chunk_failure(index, exc)
                    futures[submit(
                        _guarded_chunk,
                        *self._submit_args(index, pooled=True))] = index
                    if monitor is not None:
                        monitor.submitted(index)
                else:
                    self._finish_chunk(index, self._decoded(chunk))
            if monitor is not None:
                reason = monitor.expired()
                if reason is not None:
                    for future in futures:
                        future.cancel()
                    raise _PoolBroken(reason)

    def _flush_completed(self, futures: Dict[Future, int]) -> None:
        """Persist chunks whose futures already finished successfully."""
        for future, index in list(futures.items()):
            if not future.done() or future.cancelled():
                continue
            if future.exception() is None:
                del futures[future]
                self._finish_chunk(index, self._decoded(future.result()))


def _release_abandoned(futures: Dict[Future, int]) -> None:
    """Unlink transported results of settled-but-unconsumed futures.

    Called after an owned round's pool has shut down (every future is
    settled by then): any successful result still sitting in ``futures``
    was never decoded, so its shared-memory segment must be released
    here or it would outlive the run.
    """
    for future in futures:
        if future.done() and not future.cancelled() \
                and future.exception() is None:
            release_chunk(future.result())


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------

def run_chunked(engine: str, chunk_fn: ChunkFn, config, seed: SeedLike, *,
                code_version: int, n_workers: int = 1,
                chunk_size: Optional[int] = None,
                cache: Optional[ResultCache] = None,
                kwargs: Optional[Mapping[str, object]] = None,
                policy: Optional[ExecutionPolicy] = None) -> ChunkResult:
    """Run one batched engine under supervision; return merged arrays.

    ``chunk_fn(config, seed, n, **kwargs)`` evaluates one chunk of
    ``n`` draws and returns named 1-D arrays; chunks are concatenated
    in index order, so the merged arrays depend only on
    ``(seed, n_samples, chunk_size)`` — never on ``n_workers``, retry
    outcomes, or whether the run resumed from a checkpoint.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    kwargs = dict(kwargs or {})
    policy = policy if policy is not None else ExecutionPolicy.from_env()
    sizes = chunk_sizes(config.n_samples, chunk_size)
    token = _seed_cache_token(seed)

    run_key = None
    if token is not None:
        run_key = {"engine": engine,
                   "code_version": code_version,
                   "config": _config_key(config),
                   "seed": token,
                   "chunk_sizes": sizes,
                   "kwargs": kwargs}

    store = _resolve_cache(cache)
    key = run_key if store.enabled else None
    if key is not None:
        cached = store.get(key)
        if cached is not None:
            return cached

    checkpoint = None
    if policy.checkpoint_dir is not None and run_key is not None:
        checkpoint = CheckpointStore(policy.checkpoint_dir, run_key,
                                     n_chunks=len(sizes))

    seeds = chunk_seeds(seed, len(sizes))
    supervisor = _Supervisor(engine, chunk_fn, config, seeds, sizes,
                             kwargs, policy, checkpoint)
    chunks = supervisor.run(n_workers)

    merged = _merge_chunks(chunks, len(sizes))
    if key is not None:
        store.put(key, merged)
    return merged


def run_indexed(engine: str, chunk_fn: ChunkFn, config, n_items: int, *,
                code_version: int,
                cache_key: Optional[Mapping[str, object]] = None,
                n_workers: int = 1,
                chunk_size: Optional[int] = None,
                cache: Optional[ResultCache] = None,
                kwargs: Optional[Mapping[str, object]] = None,
                policy: Optional[ExecutionPolicy] = None) -> ChunkResult:
    """Run an *indexed map* under supervision; return merged arrays.

    The seeded-sweep counterpart of :func:`run_chunked` for workloads
    whose randomness was already drawn: ``chunk_fn(config, start, n,
    **kwargs)`` deterministically evaluates items ``[start, start + n)``
    of a precomputed sequence (trace snapshots, scenario index tables)
    and returns named arrays with ``n`` leading rows.  Chunks merge in
    index order, so the result is **independent of chunking and worker
    count** — the trace pipeline pins serial == parallel == cached
    bit-identity on exactly this property.

    Retry/backoff, pool rebuild/degradation, worker timeouts and
    checkpoint/resume behave as in :func:`run_chunked`.  ``cache_key``
    is the caller's description of what determines the items (e.g.
    trace config + seed); when ``None`` the run is treated as
    uncacheable — no result cache, no checkpoints.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    kwargs = dict(kwargs or {})
    policy = policy if policy is not None else ExecutionPolicy.from_env()
    sizes = chunk_sizes(n_items, chunk_size)
    if not sizes:  # n_items == 0 with a finite chunk_size
        sizes = [0]

    run_key = None
    if cache_key is not None:
        run_key = {"engine": engine,
                   "code_version": code_version,
                   "mode": "indexed",
                   "key": dict(cache_key),
                   "chunk_sizes": sizes,
                   "kwargs": kwargs}

    store = _resolve_cache(cache)
    key = run_key if store.enabled else None
    if key is not None:
        cached = store.get(key)
        if cached is not None:
            return cached

    checkpoint = None
    if policy.checkpoint_dir is not None and run_key is not None:
        checkpoint = CheckpointStore(policy.checkpoint_dir, run_key,
                                     n_chunks=len(sizes))

    # Start offsets ride in the supervisor's per-chunk seed slot: chunk
    # i evaluates the pure function (config, starts[i], sizes[i]).
    starts = chunk_starts(sizes)
    supervisor = _Supervisor(engine, chunk_fn, config, starts, sizes,
                             kwargs, policy, checkpoint)
    chunks = supervisor.run(n_workers)

    merged = _merge_chunks(chunks, len(sizes))
    if key is not None:
        store.put(key, merged)
    return merged


def _merge_chunks(chunks: Dict[int, ChunkResult],
                  n_chunks: int) -> ChunkResult:
    """Concatenate per-chunk arrays in index order."""
    return {name: np.concatenate([chunks[i][name]
                                  for i in range(n_chunks)])
            for name in chunks[0]}


def _config_key(config) -> Mapping[str, object]:
    """The cache/checkpoint rendering of an engine config dataclass."""
    return asdict(config)
