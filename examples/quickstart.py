#!/usr/bin/env python
"""Quickstart: the SIC model in five minutes.

Walks the paper's core story end to end on one toy setup:

1. two signals at a receiver — capacity with and without SIC (Eq. 3/4);
2. feasible bitrates and the decode procedure (Eq. 1/2);
3. packet completion time: serial vs concurrent-with-SIC (Eq. 5/6);
4. the equal-rate sweet spot ("stronger SNR twice the weaker in dB");
5. a four-client upload schedule from the blossom scheduler.

Run:  python examples/quickstart.py
"""

from repro.phy import Channel, thermal_noise_watts
from repro.scheduling import SicScheduler, UploadClient
from repro.sic import (
    SicReceiver,
    Transmission,
    capacity_with_sic,
    capacity_without_sic,
    sic_gain_same_receiver,
    z_serial_same_receiver,
    z_sic_same_receiver,
)
from repro.sic.airtime import optimal_weak_power_ratio
from repro.techniques import TechniqueSet
from repro.util import linear_to_db


def main() -> None:
    channel = Channel(bandwidth_hz=20e6, noise_w=thermal_noise_watts(20e6))
    n0 = channel.noise_w

    # Two clients: one at 30 dB SNR, one at 15 dB SNR.
    strong = 10.0 ** (30.0 / 10.0) * n0
    weak = 10.0 ** (15.0 / 10.0) * n0

    print("== 1. Channel capacity (Eqs. 3-4) ==")
    c_without = capacity_without_sic(channel, strong, weak)
    c_with = capacity_with_sic(channel, strong, weak)
    print(f"without SIC (best single transmitter): {c_without / 1e6:7.1f} Mbps")
    print(f"with SIC (both transmit concurrently): {c_with / 1e6:7.1f} Mbps")
    print(f"capacity gain: {c_with / c_without:.3f}x\n")

    print("== 2. Feasible bitrates and decoding (Eqs. 1-2) ==")
    receiver = SicReceiver(channel=channel)
    rate_strong, rate_weak = receiver.feasible_rate_pair(strong, weak)
    print(f"stronger signal, interference-limited: {rate_strong / 1e6:7.1f} Mbps")
    print(f"weaker signal, after cancellation:     {rate_weak / 1e6:7.1f} Mbps")
    outcome = receiver.resolve_collision(
        Transmission(strong, rate_strong, "strong"),
        Transmission(weak, rate_weak, "weak"))
    print(f"collision resolved by SIC: {outcome.collision_resolved}")
    too_fast = receiver.resolve_collision(
        Transmission(strong, rate_strong * 1.2, "strong"),
        Transmission(weak, rate_weak, "weak"))
    print(f"...but a 20% over-rate stronger packet kills both: "
          f"decoded {too_fast.decoded_count}/2\n")

    print("== 3. Packet completion time (Eqs. 5-6) ==")
    packet_bits = 12_000.0  # one 1500-byte packet
    serial = z_serial_same_receiver(channel, packet_bits, strong, weak)
    concurrent = z_sic_same_receiver(channel, packet_bits, strong, weak)
    print(f"serial (no SIC): {serial * 1e6:7.1f} us")
    print(f"concurrent SIC:  {concurrent * 1e6:7.1f} us")
    print(f"gain: {serial / concurrent:.3f}x\n")

    print("== 4. The equal-rate sweet spot ==")
    best_weak = optimal_weak_power_ratio(channel, strong)
    print(f"stronger client SNR: {linear_to_db(strong / n0):5.1f} dB")
    print(f"ideal partner SNR:   {linear_to_db(best_weak / n0):5.1f} dB "
          "(about half the dB -> 'square rule')")
    g = sic_gain_same_receiver(channel, packet_bits, strong, best_weak)
    print(f"gain at the sweet spot: {g:.3f}x "
          "(one packet rides for free)\n")

    print("== 5. A four-client upload schedule ==")
    clients = [
        UploadClient("alice", 10.0 ** (32.0 / 10.0) * n0),
        UploadClient("bob", 10.0 ** (26.0 / 10.0) * n0),
        UploadClient("carol", 10.0 ** (16.0 / 10.0) * n0),
        UploadClient("dave", 10.0 ** (12.0 / 10.0) * n0),
    ]
    scheduler = SicScheduler(channel=channel, packet_bits=packet_bits,
                             techniques=TechniqueSet.ALL)
    schedule = scheduler.schedule(clients)
    print(schedule)


if __name__ == "__main__":
    main()
