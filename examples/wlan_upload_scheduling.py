#!/usr/bin/env python
"""WLAN upload scheduling: the paper's headline scenario at scale.

Places a cell of clients around one SIC-capable AP, builds the optimal
SIC-aware schedule (blossom matching over pair costs, Section 6),
compares it against serial / greedy / random policies, and *executes*
every schedule in the event-driven simulator to confirm the predicted
completion times and that every packet decodes.

Run:  python examples/wlan_upload_scheduling.py [n_clients] [seed]
"""

import sys

from repro.phy import Channel, LogDistancePathLoss, thermal_noise_watts
from repro.scheduling import (
    SicScheduler,
    UploadClient,
    greedy_schedule,
    random_schedule,
    serial_schedule,
)
from repro.sim import UplinkSimulator
from repro.techniques import TechniqueSet
from repro.topology import random_uplink_clients
from repro.topology.nodes import DEFAULT_TX_POWER_W
from repro.util import linear_to_db


def build_backlog(n_clients: int, seed: int, channel: Channel):
    """Place clients physically and derive their RSS at the AP."""
    topo = random_uplink_clients(n_clients, cell_radius_m=40.0, rng=seed)
    propagation = LogDistancePathLoss(exponent=3.5)
    clients = []
    for client in topo.clients:
        rss = float(propagation.received_power(
            DEFAULT_TX_POWER_W, client.distance_to(topo.ap)))
        clients.append(UploadClient(client.name, rss))
    return topo, clients


def main() -> int:
    n_clients = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2010

    channel = Channel(bandwidth_hz=20e6, noise_w=thermal_noise_watts(20e6))
    topo, clients = build_backlog(n_clients, seed, channel)

    print(f"Backlog: {n_clients} clients in a 40 m cell (seed {seed})")
    for node, client in zip(topo.clients, clients):
        snr_db = linear_to_db(client.rss_w / channel.noise_w)
        print(f"  {client.name:>4}: {node.distance_to(topo.ap):5.1f} m "
              f"from AP, SNR {snr_db:5.1f} dB")
    print()

    scheduler = SicScheduler(channel=channel, packet_bits=12_000.0,
                             techniques=TechniqueSet.ALL)
    simulator = UplinkSimulator(channel=channel)

    policies = {
        "serial (802.11 today)": serial_schedule(scheduler, clients),
        "random pairing": random_schedule(scheduler, clients, rng=seed),
        "greedy pairing": greedy_schedule(scheduler, clients),
        "blossom (paper Sec. 6)": scheduler.schedule(clients),
    }

    print(f"{'policy':>24} | {'predicted':>10} | {'simulated':>10} | "
          f"{'gain':>6} | decoded")
    print("-" * 72)
    for name, schedule in policies.items():
        metrics = simulator.run(schedule, clients)
        status = "all" if metrics.all_decoded else \
            f"{metrics.failed_count} FAILED"
        print(f"{name:>24} | {schedule.total_time_s * 1e3:8.3f} ms | "
              f"{metrics.completion_time_s * 1e3:8.3f} ms | "
              f"{schedule.gain:5.3f}x | {status}")

    print()
    print("Optimal schedule detail:")
    print(policies["blossom (paper Sec. 6)"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
