#!/usr/bin/env python
"""The full trace pipeline: generate, persist, reload, evaluate.

Reproduces the paper's Section 7 methodology end to end on the
synthetic substrate:

1. generate a multi-day building RSSI trace (the Fig. 13 input) and a
   5-AP / 100-location downlink measurement campaign (the Fig. 14
   input);
2. write both to JSONL and read them back (what you would do with real
   measurement data);
3. run the Fig. 13 upload-pairing evaluation and the Fig. 14
   arbitrary-vs-discrete evaluation from the reloaded files;
4. print the gain summaries next to the paper's claims.

Run:  python examples/trace_pipeline.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.experiments import fig13, fig14
from repro.traces import (
    DownlinkTraceConfig,
    DownlinkTraceGenerator,
    UploadTraceConfig,
    UploadTraceGenerator,
    read_downlink_measurements,
    read_upload_trace,
    write_downlink_measurements,
    write_upload_trace,
)


def print_gain_table(title, result, labels):
    print(title)
    for label in labels:
        s = result[label]["summary"]
        print(f"  {label:>24}: no-gain {s['frac_no_gain']:6.1%}  "
              f">10% {s['frac_gain_over_10pct']:6.1%}  "
              f">20% {s['frac_gain_over_20pct']:6.1%}  "
              f"median {s['median']:.3f}  max {s['max']:.3f}")
    print()


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="sic-traces-"))
    out_dir.mkdir(parents=True, exist_ok=True)

    print("== 1. Generating synthetic traces ==")
    upload_config = UploadTraceConfig(duration_days=3.0)
    upload_trace = UploadTraceGenerator(upload_config).generate(seed=2010)
    print(f"upload trace: {len(upload_trace)} AP snapshots over "
          f"{upload_trace.duration_s / 86400:.1f} days, "
          f"{len(upload_trace.busy_snapshots(2))} with >= 2 clients")

    downlink_config = DownlinkTraceConfig()
    campaign = DownlinkTraceGenerator(downlink_config).generate(seed=2010)
    print(f"downlink campaign: {len(campaign)} client locations x "
          f"{downlink_config.n_aps} APs\n")

    print(f"== 2. JSONL round trip ({out_dir}) ==")
    upload_path = out_dir / "building_trace.jsonl"
    downlink_path = out_dir / "downlink_campaign.jsonl"
    write_upload_trace(upload_trace, upload_path)
    write_downlink_measurements(campaign, downlink_path)
    upload_trace = read_upload_trace(upload_path)
    campaign = read_downlink_measurements(downlink_path)
    print(f"wrote and reloaded {upload_path.name} "
          f"({upload_path.stat().st_size / 1024:.0f} KiB) and "
          f"{downlink_path.name} "
          f"({downlink_path.stat().st_size / 1024:.0f} KiB)\n")

    print("== 3. Fig. 13: upload pairing over the trace ==")
    result13 = fig13.compute(trace=upload_trace, seed=2010,
                             max_snapshots=300)
    print_gain_table(
        f"({result13['meta']['n_snapshots']} busy snapshots; paper: "
        "gains exist, enhanced by power control / multirate)",
        result13,
        ["pairing", "pairing+power_control", "pairing+multirate"])

    print("== 4. Fig. 14: two AP-client pairs, arbitrary vs discrete ==")
    result14 = fig14.compute(measurements=campaign, n_scenarios=2000,
                             seed=2010)
    print_gain_table(
        "(paper: 14a limited gains even with packing; 14b packing "
        "unlocks real gains)",
        result14,
        ["arbitrary", "arbitrary+packing", "discrete",
         "discrete+packing"])

    print(f"trace files kept in {out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
