#!/usr/bin/env python
"""Residential WLANs: when does a neighbour's AP help you? (Section 4.2)

In an apartment row each client is WPA-locked to its own home's AP —
even when the neighbour's AP is closer.  The paper's observation:
"strangely, this restriction provides some opportunities for SIC".  A
client whose own AP is farther than the neighbour's can decode the
neighbour's (stronger) downlink packet first, cancel it, and extract
its own packet from the residue — so both homes' downlinks can run
concurrently.

This example runs :func:`repro.architectures.residential
.evaluate_residential_rows` over random apartment rows, contrasts it
with the enterprise setting (where nearest-AP association removes the
opportunity entirely), and prints the Fig. 5 case mix.

Run:  python examples/residential_neighbors.py [n_rows] [seed]
"""

import sys

from repro.architectures import (
    evaluate_ewlan_cross_pairs,
    evaluate_residential_rows,
)
from repro.phy import Channel, thermal_noise_watts
from repro.sic import PairCase


def main() -> int:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    channel = Channel(bandwidth_hz=20e6, noise_w=thermal_noise_watts(20e6))
    report = evaluate_residential_rows(n_rows=n_rows, channel=channel,
                                       seed=seed)

    print(f"{report.n_pairs} cross-home downlink pairs from {n_rows} "
          f"apartment rows (4 homes each, 6 dB shadowing)\n")
    print("Fig. 5 case mix (who needs SIC):")
    for case in PairCase:
        share = report.case_fractions.get(case, 0.0)
        print(f"  case {case.value} ({case.name.lower():>12}): {share:6.1%}")
    print(f"\nSIC feasible (neighbour packet decodable): "
          f"{report.sic_feasible_fraction:.1%} of pairs")
    summary = report.gain_summary
    print("Concurrent-downlink gain over serial:")
    print(f"  no gain: {summary['frac_no_gain']:.1%}   "
          f">10%: {summary['frac_gain_over_10pct']:.1%}   "
          f">20%: {summary['frac_gain_over_20pct']:.1%}   "
          f"max: {summary['max']:.2f}x")

    # Contrast: enterprise association freedom removes the opportunity.
    ewlan = evaluate_ewlan_cross_pairs(n_grids=max(20, n_rows // 4),
                                       channel=channel, seed=seed)
    print(f"\nEnterprise contrast (nearest-AP association): capture in "
          f"{ewlan.capture_fraction:.1%} of cross pairs, SIC feasible in "
          f"{ewlan.sic_feasible_fraction:.1%}")

    print("\nPaper's conclusions reproduced: the residential lock does "
          "create SIC\nopportunities (cases b/c with a decodable neighbour "
          "packet) that the\nenterprise setting lacks — but they are a "
          "small minority of pairs, and, as\nthe two-receiver analysis "
          "(Fig. 6) predicts, even the feasible ones yield\nalmost no "
          "completion-time gain under ideal rate adaptation.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
