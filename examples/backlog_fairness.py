#!/usr/bin/env python
"""Multi-packet backlogs, fairness, and MAC overheads (extensions).

The paper's scheduler handles one packet per client; Section 3 notes
that real clients hold *queues* and "need to get a fair share of the
channel".  This example drains uneven backlogs with round-based
blossom re-pairing (:mod:`repro.scheduling.backlog`), reports Jain
fairness over per-client finish times, and then restores the 802.11
MAC overheads the paper discounts (:mod:`repro.sim.overhead`) to see
what survives.

Run:  python examples/backlog_fairness.py
"""

from repro.phy import Channel, thermal_noise_watts
from repro.scheduling.backlog import BacklogClient, drain_backlog
from repro.scheduling.scheduler import SicScheduler
from repro.sim.overhead import DOT11G_OVERHEADS, apply_overheads
from repro.techniques import TechniqueSet


def main() -> int:
    channel = Channel(bandwidth_hz=20e6, noise_w=thermal_noise_watts(20e6))
    n0 = channel.noise_w
    scheduler = SicScheduler(channel=channel, techniques=TechniqueSet.ALL)

    print("== 1. Draining an uneven backlog ==")
    backlog = [
        BacklogClient("alice", 10 ** (32 / 10) * n0, backlog=5),
        BacklogClient("bob", 10 ** (26 / 10) * n0, backlog=2),
        BacklogClient("carol", 10 ** (16 / 10) * n0, backlog=4),
        BacklogClient("dave", 10 ** (12 / 10) * n0, backlog=1),
    ]
    result = drain_backlog(scheduler, backlog)
    print(f"{sum(c.backlog for c in backlog)} packets over "
          f"{result.n_rounds} rounds")
    print(f"total time {result.total_time_s * 1e3:.3f} ms vs serial "
          f"{result.serial_time_s * 1e3:.3f} ms -> gain "
          f"{result.gain:.3f}x")
    print("per-client finish times:")
    for name, finish in sorted(result.finish_times_s.items(),
                               key=lambda item: item[1]):
        client = next(c for c in backlog if c.name == name)
        print(f"  {name:>6}: {finish * 1e3:7.3f} ms "
              f"({client.backlog} packets)")
    print(f"Jain fairness index: {result.fairness_index():.3f} "
          "(1.0 = everyone finishes together)\n")

    print("== 2. Round-by-round pairing ==")
    for i, schedule in enumerate(result.rounds, start=1):
        slots = ", ".join("|".join(slot.clients)
                          for slot in schedule.slots)
        print(f"round {i}: [{slots}]  "
              f"({schedule.total_time_s * 1e3:.3f} ms, "
              f"gain {schedule.gain:.3f}x)")
    print()

    print("== 3. Adding the MAC overheads the paper discounts ==")
    single_round = scheduler.schedule(
        [c.as_upload_client() for c in backlog])
    adjusted = apply_overheads(single_round, DOT11G_OVERHEADS)
    print(f"one-packet-each round, idealised: gain "
          f"{single_round.gain:.3f}x")
    print(f"with full 802.11g overheads:      gain {adjusted.gain:.3f}x "
          f"(overheads are {adjusted.overhead_fraction:.0%} of airtime)")
    print("\nPairing halves the number of channel accesses, so the "
          "fixed per-access\ncosts (DIFS + backoff + preamble) actually "
          "*favour* SIC — one of the\nthings the back-of-the-envelope "
          "analysis leaves on the table.\n")

    print("== 4. Online arrivals: delay, not just airtime ==")
    from repro.scheduling.online import (
        ArrivalClient,
        compare_policies_online,
    )
    arrival_clients = [
        ArrivalClient(c.name, c.rss_w, arrival_rate_hz=4000.0)
        for c in backlog
    ]
    comparison = compare_policies_online(scheduler, arrival_clients,
                                         horizon_s=0.25, seed=2010)
    for policy, metrics in comparison.items():
        print(f"  {policy:>12}: mean sojourn "
              f"{metrics.mean_delay_s * 1e3:7.3f} ms, p95 "
              f"{metrics.p95_delay_s * 1e3:7.3f} ms "
              f"({metrics.served_packets} packets, utilisation "
              f"{metrics.utilisation:.0%})")
    print("\nUnder load the pairing gain becomes a *stability margin*: "
          "the FIFO queue\ngrows without bound at an offered load the "
          "SIC-paired AP absorbs easily.")
    return 0


if __name__ == "__main__":
    main()
