#!/usr/bin/env python
"""Beyond pairs: k-signal SIC and group scheduling (extension).

The paper restricts itself to cancelling *one* signal ("the simpler
case of two packets only") and pairs clients accordingly.  The PHY
technique is iterative, though — decode, subtract, repeat — so this
example explores the paper's natural extension:

1. the k-user capacity identity (the Eq. 4 telescoping generalises);
2. the equal-rate *ladder*: RSS levels that let k packets finish
   together, generalising the pairing sweet spot;
3. group scheduling with slots of up to k clients, executed in the
   event simulator against the successive receiver;
4. the catch: each extra layer needs another cancellation, and a
   receiver capped at one cancellation (the paper's hardware) loses
   every layer below the second.

Run:  python examples/ksic_groups.py
"""

from repro.phy import Channel, thermal_noise_watts
from repro.phy.shannon import shannon_rate
from repro.scheduling import UploadClient, greedy_group_schedule
from repro.sic import SuccessiveReceiver, Transmission
from repro.sic.ksic import (
    capacity_with_ksic,
    equal_rate_group_powers,
    ksic_uplink_gain,
    successive_rate_limits,
)
from repro.sim import UplinkSimulator
from repro.util import linear_to_db
from repro.util.rng import make_rng


def main() -> int:
    channel = Channel(bandwidth_hz=20e6, noise_w=thermal_noise_watts(20e6))
    n0 = channel.noise_w

    print("== 1. The k-user capacity identity ==")
    powers = [10 ** (snr / 10) * n0 for snr in (30.0, 22.0, 14.0, 6.0)]
    total = capacity_with_ksic(channel, powers)
    closed = shannon_rate(channel.bandwidth_hz, sum(powers), 0.0, n0)
    print(f"sum of 4 successive rates: {total / 1e6:8.2f} Mbps")
    print(f"single tx at summed power: {closed / 1e6:8.2f} Mbps "
          f"(identity holds to {abs(total - closed) / closed:.1e})\n")

    print("== 2. The equal-rate ladder ==")
    for k in (2, 3, 4):
        ladder = equal_rate_group_powers(channel, k, 10.0)
        rates = successive_rate_limits(channel, ladder)
        snrs = ", ".join(f"{linear_to_db(p / n0):5.1f}" for p in ladder)
        gain = ksic_uplink_gain(channel, 12_000.0, ladder)
        print(f"k={k}: SNR ladder [{snrs}] dB -> every rate "
              f"{rates[0] / 1e6:.2f} Mbps, group gain {gain:.3f}x")
    print()

    print("== 3. Group scheduling, simulated ==")
    rng = make_rng(42)
    clients = [UploadClient(f"C{i + 1}",
                            10 ** (rng.uniform(6, 36) / 10) * n0)
               for i in range(12)]
    simulator = UplinkSimulator(channel=channel)
    for k in (1, 2, 3, 4):
        schedule = greedy_group_schedule(channel, clients,
                                         max_group_size=k)
        metrics = simulator.run_groups(schedule, clients)
        assert metrics.all_decoded
        print(f"max group size {k}: {len(schedule.slots):2d} slots, "
              f"gain {schedule.gain:.3f}x, simulated "
              f"{metrics.completion_time_s * 1e3:.3f} ms")
    print()

    print("== 4. The hardware catch ==")
    ladder = equal_rate_group_powers(channel, 4, 10.0)
    rates = successive_rate_limits(channel, ladder)
    txs = [Transmission(p, r, f"L{i + 1}")
           for i, (p, r) in enumerate(zip(ladder, rates))]
    for cap in (None, 2, 1, 0):
        receiver = SuccessiveReceiver(channel=channel,
                                      max_cancellations=cap)
        outcome = receiver.resolve(txs)
        cap_label = "unbounded" if cap is None else f"{cap} layer(s)"
        print(f"cancellation budget {cap_label:>10}: decoded "
              f"{outcome.decoded_count}/4 packets")
    print("\nThe paper's one-cancellation receiver tops out at 2 packets "
          "per slot —\nexactly why its MAC analysis stops at client "
          "pairing.")
    return 0


if __name__ == "__main__":
    main()
