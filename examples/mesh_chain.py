#!/usr/bin/env python
"""Multihop mesh chains and self-interference (Section 4.3).

The paper: routing A -> C -> D -> E over a long-short-long chain is "a
perfect recipe for SIC at C" — the A->C and D->E transmissions can run
concurrently because C can decode D's (stronger, nearby) packet, cancel
it, and recover A's.  But the long hops must run slow, capping the
end-to-end throughput; shortening them breaks the SIC condition.

This example sweeps the chain geometry via
:mod:`repro.architectures.mesh` and reports, per shape, whether SIC at
the middle node is feasible, the pipeline throughput with and without
the overlap, and where the feasibility frontier sits.

Run:  python examples/mesh_chain.py
"""

from repro.architectures.mesh import (
    feasibility_frontier,
    sweep_chain_geometries,
)
from repro.phy import Channel, thermal_noise_watts

LONG_HOPS = (20.0, 30.0, 40.0, 60.0)
SHORT_HOPS = (2.0, 5.0, 10.0, 20.0)


def main() -> int:
    channel = Channel(bandwidth_hz=20e6, noise_w=thermal_noise_watts(20e6))
    results = sweep_chain_geometries(channel, long_hops_m=LONG_HOPS,
                                     short_hops_m=SHORT_HOPS)

    print("A -> C -> D -> E chain: sweep of (long, short) hop lengths\n")
    print(f"{'long':>6} | {'short':>6} | {'SIC@C':>6} | "
          f"{'serial Mb/s':>11} | {'SIC Mb/s':>9} | {'gain':>6}")
    print("-" * 60)
    for analysis in results:
        print(f"{analysis.long_hop_m:6.0f} | {analysis.short_hop_m:6.0f} | "
              f"{'yes' if analysis.sic_feasible else 'no':>6} | "
              f"{analysis.throughput_serial_bps / 1e6:11.2f} | "
              f"{analysis.throughput_sic_bps / 1e6:9.2f} | "
              f"{analysis.gain:5.2f}x")

    frontier = feasibility_frontier(results)
    print("\nFeasibility frontier (largest short hop still admitting "
          "SIC at C):")
    for long_m in LONG_HOPS:
        limit = frontier.get(long_m)
        print(f"  long = {long_m:4.0f} m: "
              + (f"short <= {limit:.0f} m" if limit is not None
                 else "never feasible"))

    print("\nPaper's observations reproduced:")
    print(" * long-short-long chains enable SIC at the middle node;")
    print(" * equal-length chains break the SIC condition at C;")
    print(" * even when feasible, the slow long hops cap the end-to-end "
          "throughput,\n   so the SIC gain is a pipeline overlap, not a "
          "rate increase.")
    return 0


if __name__ == "__main__":
    main()
